(* Timer-wheel scheduler tests: the QCheck model proving wheel and heap
   are observationally equivalent, plus targeted unit tests for the
   wheel's horizon machinery (cascade boundaries, overflow spills, the
   below-cursor front heap) that random programs rarely hit squarely. *)

module E = Sim.Engine

(* ---------------- random-program equivalence model ----------------

   A program is a sequence of scheduler operations interpreted
   identically against a heap engine and a wheel engine. Every executed
   event appends (virtual time, event id) to a log; the two logs (plus
   executed counts and final clocks) must match exactly. Ids are handed
   out in execution order for nested events, so any dispatch-order
   divergence shows up as differing logs even when the time streams
   agree. *)

type op =
  | Sched of int  (* schedule at now + delay, log on fire *)
  | Sched_nested of int * int
      (* schedule at now + d1 an event that schedules a child at + d2
         when it fires; d2 = 0 exercises mid-batch insertion *)
  | Cancel of int  (* cancel the k-th handle created so far (mod count) *)
  | Run_until of int  (* run ~until:(now + u) *)
  | Step  (* single-step once *)

let run_program ~sched ~tiebreak ops =
  let eng = E.create ~sched ~tiebreak () in
  let log = ref [] in
  let next_id = ref 0 in
  let handles = ref [||] in
  let n_handles = ref 0 in
  let remember h =
    if !n_handles = Array.length !handles then begin
      let a = Array.make (max 16 (2 * !n_handles)) h in
      Array.blit !handles 0 a 0 !n_handles;
      handles := a
    end;
    !handles.(!n_handles) <- h;
    incr n_handles
  in
  let fire id () = log := (E.now eng, id) :: !log in
  let sched_logged ~after k =
    let id = !next_id in
    incr next_id;
    remember (E.schedule eng ~after (fun () -> fire id (); k ()))
  in
  List.iter
    (fun op ->
      match op with
      | Sched d -> sched_logged ~after:d (fun () -> ())
      | Sched_nested (d1, d2) ->
          sched_logged ~after:d1 (fun () ->
              (* child id assigned at fire time: equal streams imply
                 equal dispatch order, not just equal times *)
              sched_logged ~after:d2 (fun () -> ()))
      | Cancel k ->
          if !n_handles > 0 then E.cancel eng !handles.(k mod !n_handles)
      | Run_until u -> E.run ~until:(E.now eng + u) eng
      | Step -> ignore (E.step eng))
    ops;
  E.run eng;
  (List.rev !log, E.executed eng, E.now eng, E.pending eng)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (* dense near-term work: same-instant batches via repeated deltas *)
        (6, map (fun d -> Sched d) (oneofl [ 0; 1; 7; 64; 64; 1_000; 20_000 ]));
        (3, map (fun d -> Sched d) (int_bound 200_000));
        (* nested, often same-instant (d2 = 0 hits batch insertion) *)
        ( 3,
          map2
            (fun d1 d2 -> Sched_nested (d1, d2))
            (int_bound 70_000)
            (oneofl [ 0; 0; 1; 70_000 ]) );
        (* level-1/2 cascade crossings and out-of-horizon spills *)
        ( 2,
          map (fun d -> Sched d)
            (oneofl
               [
                 (1 lsl 16) - 1;
                 1 lsl 16;
                 (1 lsl 16) + 1;
                 (1 lsl 17) + 13;
                 1 lsl 32;
                 (1 lsl 32) + 3;
                 (1 lsl 48) + 5;
               ]) );
        (2, map (fun k -> Cancel k) (int_bound 1000));
        (2, map (fun u -> Run_until u) (oneofl [ 0; 1; 999; 65_535; 65_536 ]));
        (1, return Step);
      ])

let program_gen = QCheck.Gen.(list_size (1 -- 40) op_gen)

let program_arb =
  (* No shrinker beyond QCheck's structural list shrinking; ops print
     via Stdlib-ish constructors for failure triage. *)
  QCheck.make program_gen
    ~print:(fun ops ->
      String.concat "; "
        (List.map
           (function
             | Sched d -> Printf.sprintf "S%d" d
             | Sched_nested (a, b) -> Printf.sprintf "N(%d,%d)" a b
             | Cancel k -> Printf.sprintf "C%d" k
             | Run_until u -> Printf.sprintf "R%d" u
             | Step -> "T")
           ops))

let equivalent ~tiebreak ops =
  run_program ~sched:E.Heap ~tiebreak ops
  = run_program ~sched:E.Wheel ~tiebreak ops

let prop_equiv_fifo =
  QCheck.Test.make ~name:"wheel = heap: (time, id) streams (Fifo)" ~count:300
    program_arb (equivalent ~tiebreak:E.Fifo)

let prop_equiv_shuffle =
  QCheck.Test.make ~name:"wheel = heap: (time, id) streams (Shuffle)"
    ~count:300 program_arb
    (fun ops ->
      equivalent ~tiebreak:(E.Shuffle 7) ops
      && equivalent ~tiebreak:(E.Shuffle 12345) ops)

(* The model must have teeth: re-introduce the ordering bug the batch
   sort prevents (Shuffle batches dispatched in seq order) and require
   the equivalence check to catch it on a trivially small program. *)
let test_detects_injected_ordering_bug () =
  let ops = List.init 12 (fun _ -> Sched 50) in
  Fun.protect
    ~finally:(fun () -> E.debug_no_batch_sort := false)
    (fun () ->
      E.debug_no_batch_sort := true;
      Alcotest.(check bool)
        "equivalence check catches the unsorted-batch bug" false
        (equivalent ~tiebreak:(E.Shuffle 1) ops);
      (* Fifo batches are seq-ordered either way: the hook must leave
         them untouched, or the bug injection itself would be unsound. *)
      Alcotest.(check bool)
        "Fifo unaffected by the injected bug" true
        (equivalent ~tiebreak:E.Fifo ops))

(* ---------------- wheel-horizon unit tests ---------------- *)

let test_cascade_boundaries () =
  let eng = E.create ~sched:E.Wheel () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  (* One event per wheel level plus an out-of-horizon spill. *)
  ignore (E.schedule eng ~after:3 (note "near"));
  ignore (E.schedule eng ~after:(1 lsl 16) (note "l1"));
  ignore (E.schedule eng ~after:(1 lsl 32) (note "l2"));
  ignore (E.schedule eng ~after:((1 lsl 48) + 9) (note "overflow"));
  Alcotest.(check int) "spill counted" 1 (E.spills eng);
  E.run eng;
  Alcotest.(check (list string))
    "levels dispatch in time order"
    [ "near"; "l1"; "l2"; "overflow" ]
    (List.rev !log);
  Alcotest.(check bool) "cascades happened" true (E.cascades eng > 0);
  Alcotest.(check int) "clock at overflow event" ((1 lsl 48) + 9) (E.now eng)

let test_same_instant_across_cascade () =
  (* Events scheduled from different times at the same far instant must
     still dispatch FIFO after cascading down. *)
  let eng = E.create ~sched:E.Wheel () in
  let target = (1 lsl 17) + 42 in
  let log = ref [] in
  ignore (E.schedule_at eng ~time:target (fun () -> log := 0 :: !log));
  ignore
    (E.schedule eng ~after:5 (fun () ->
         ignore (E.schedule_at eng ~time:target (fun () -> log := 1 :: !log))));
  ignore (E.schedule_at eng ~time:target (fun () -> log := 2 :: !log));
  E.run eng;
  Alcotest.(check (list int))
    "seq order preserved through cascade" [ 0; 2; 1 ] (List.rev !log)

let test_front_heap_after_horizon_peek () =
  (* run ~until peeks past the pending event, advancing the wheel
     cursor beyond the horizon; scheduling into that gap must still
     dispatch in time order (via the front heap). *)
  let eng = E.create ~sched:E.Wheel () in
  let log = ref [] in
  ignore (E.schedule eng ~after:1_000 (fun () -> log := "far" :: !log));
  E.run ~until:500 eng;
  Alcotest.(check int) "clock at horizon" 500 (E.now eng);
  ignore (E.schedule eng ~after:100 (fun () -> log := "front" :: !log));
  ignore (E.schedule eng ~after:100 (fun () -> log := "front2" :: !log));
  E.run eng;
  Alcotest.(check (list string))
    "front events run first, in order"
    [ "front"; "front2"; "far" ]
    (List.rev !log)

let test_cancel_compaction_wheel () =
  let eng = E.create ~sched:E.Wheel () in
  let ran = ref 0 in
  let handles =
    List.init 100 (fun i ->
        E.schedule eng ~after:(10 + (i mod 7)) (fun () -> incr ran))
  in
  List.iteri (fun i h -> if i mod 10 <> 0 then E.cancel eng h) handles;
  Alcotest.(check int) "pending excludes tombstones" 10 (E.pending eng);
  Alcotest.(check bool) "compaction swept" true (E.compactions eng > 0);
  E.run eng;
  Alcotest.(check int) "survivors ran" 10 !ran;
  Alcotest.(check int) "none left" 0 (E.pending eng)

let test_stale_handle_ignored () =
  let eng = E.create ~sched:E.Wheel () in
  let ran = ref 0 in
  let h = E.schedule eng ~after:5 (fun () -> incr ran) in
  E.run eng;
  (* The event ran; its slot may have been recycled. Cancelling the
     stale handle must be a no-op on whatever lives there now. *)
  ignore (E.schedule eng ~after:5 (fun () -> incr ran));
  E.cancel eng h;
  E.cancel eng h;
  E.run eng;
  Alcotest.(check int) "both events ran" 2 !ran

let test_daemon_quiet_wheel () =
  let eng = E.create ~sched:E.Wheel () in
  let ticks = ref 0 in
  E.every eng ~period:100 (fun () -> incr ticks; true);
  ignore (E.schedule eng ~after:450 ignore);
  E.run_until_quiet eng;
  Alcotest.(check int) "stopped once only daemons remain" 450 (E.now eng);
  Alcotest.(check int) "daemon ticks up to the last live event" 4 !ticks

let suite =
  [
    QCheck_alcotest.to_alcotest prop_equiv_fifo;
    QCheck_alcotest.to_alcotest prop_equiv_shuffle;
    Alcotest.test_case "model detects injected ordering bug" `Quick
      test_detects_injected_ordering_bug;
    Alcotest.test_case "cascade and overflow boundaries" `Quick
      test_cascade_boundaries;
    Alcotest.test_case "same instant across cascade" `Quick
      test_same_instant_across_cascade;
    Alcotest.test_case "front heap after horizon peek" `Quick
      test_front_heap_after_horizon_peek;
    Alcotest.test_case "cancel-heavy compaction" `Quick
      test_cancel_compaction_wheel;
    Alcotest.test_case "stale handles ignored" `Quick test_stale_handle_ignored;
    Alcotest.test_case "run_until_quiet with daemons" `Quick
      test_daemon_quiet_wheel;
  ]
