(* The trace library: bounded rings, HDR histograms, the null sink,
   Chrome export well-formedness, and a traced mini-run whose grace
   periods must pair up in virtual-time order. *)

(* ---------------- ring buffer ---------------- *)

let test_ring_basic () =
  let r = Trace.Ring.create ~capacity:4 in
  Alcotest.(check int) "empty" 0 (Trace.Ring.length r);
  List.iter (fun i -> Trace.Ring.push r i) [ 1; 2; 3 ];
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Trace.Ring.to_list r);
  Alcotest.(check int) "no drops" 0 (Trace.Ring.dropped r)

let test_ring_overflow_drops_oldest () =
  let r = Trace.Ring.create ~capacity:4 in
  List.iter (fun i -> Trace.Ring.push r i) [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check int) "full" 4 (Trace.Ring.length r);
  Alcotest.(check (list int)) "oldest gone" [ 3; 4; 5; 6 ]
    (Trace.Ring.to_list r);
  Alcotest.(check int) "two dropped" 2 (Trace.Ring.dropped r);
  Trace.Ring.clear r;
  Alcotest.(check int) "cleared" 0 (Trace.Ring.length r);
  Trace.Ring.push r 7;
  Alcotest.(check (list int)) "reusable after clear" [ 7 ]
    (Trace.Ring.to_list r)

let test_ring_ordering_preserved () =
  let r = Trace.Ring.create ~capacity:16 in
  for i = 1 to 1000 do
    Trace.Ring.push r i
  done;
  Alcotest.(check (list int)) "last 16 in push order"
    (List.init 16 (fun i -> 985 + i))
    (Trace.Ring.to_list r);
  Alcotest.(check int) "dropped the rest" 984 (Trace.Ring.dropped r)

let test_ring_invalid_capacity () =
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Ring.create: capacity must be positive") (fun () ->
      ignore (Trace.Ring.create ~capacity:0))

(* ---------------- histogram ---------------- *)

let test_hist_exact_below_32 () =
  let h = Trace.Hist.create () in
  List.iter (Trace.Hist.record h) [ 0; 1; 5; 31 ];
  Alcotest.(check int) "count" 4 (Trace.Hist.count h);
  Alcotest.(check int) "min" 0 (Trace.Hist.min_value h);
  Alcotest.(check int) "max" 31 (Trace.Hist.max_value h);
  Alcotest.(check int) "p100 exact" 31 (Trace.Hist.percentile h 100.);
  Alcotest.(check int) "p25 exact" 0 (Trace.Hist.percentile h 25.)

let test_hist_empty () =
  let h = Trace.Hist.create () in
  Alcotest.(check int) "p50 of empty" 0 (Trace.Hist.percentile h 50.);
  Alcotest.(check int) "count" 0 (Trace.Hist.count h)

(* The _opt variants make "no samples" unambiguous: plain [percentile]
   returns 0 on an empty histogram, indistinguishable from a real 0. *)
let test_hist_opt_queries () =
  let h = Trace.Hist.create () in
  Alcotest.(check (option int)) "p50 of empty" None
    (Trace.Hist.percentile_opt h 50.);
  Alcotest.(check (option int)) "p99.9 of empty" None
    (Trace.Hist.percentile_opt h 99.9);
  Alcotest.(check (option (float 0.0))) "mean of empty" None
    (Trace.Hist.mean_opt h);
  (* A single sample lands in one bucket: every percentile answers. *)
  Trace.Hist.record h 17;
  Alcotest.(check (option int)) "p0 single" (Some 17)
    (Trace.Hist.percentile_opt h 0.);
  Alcotest.(check (option int)) "p50 single" (Some 17)
    (Trace.Hist.percentile_opt h 50.);
  Alcotest.(check (option int)) "p100 single" (Some 17)
    (Trace.Hist.percentile_opt h 100.);
  Alcotest.(check (option (float 0.0))) "mean single" (Some 17.)
    (Trace.Hist.mean_opt h);
  (* Agreement with the non-optional query when samples exist. *)
  Alcotest.(check (option int)) "matches percentile"
    (Some (Trace.Hist.percentile h 50.))
    (Trace.Hist.percentile_opt h 50.)

(* One sample: every percentile must round-trip to within the bucket's
   1/16 relative width. *)
let prop_hist_roundtrip =
  QCheck.Test.make ~name:"hist percentile round-trips within 1/16"
    ~count:500
    QCheck.(int_bound 1_000_000_000)
    (fun v ->
      let h = Trace.Hist.create () in
      Trace.Hist.record h v;
      let r = Trace.Hist.percentile h 50. in
      r <= v && v - r <= (v / 16) + 1)

let prop_hist_percentile_monotonic =
  QCheck.Test.make ~name:"hist percentiles are monotonic in p" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (int_bound 10_000_000))
    (fun vs ->
      let h = Trace.Hist.create () in
      List.iter (Trace.Hist.record h) vs;
      let ps = [ 1.; 10.; 25.; 50.; 75.; 90.; 99.; 100. ] in
      let rs = List.map (Trace.Hist.percentile h) ps in
      (* pairwise non-decreasing *)
      fst
        (List.fold_left
           (fun (ok, prev) r -> (ok && r >= prev, r))
           (true, List.hd rs) (List.tl rs)))

let prop_hist_mean_bounded =
  QCheck.Test.make ~name:"hist mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (int_bound 1_000_000))
    (fun vs ->
      let h = Trace.Hist.create () in
      List.iter (Trace.Hist.record h) vs;
      let m = Trace.Hist.mean h in
      float_of_int (Trace.Hist.min_value h) <= m
      && m <= float_of_int (Trace.Hist.max_value h))

(* Reverse iteration and the bounded newest-n window against the list
   model, wraparound included: the ring keeps the last [cap] pushes,
   [iter_rev] visits them newest-first, and [recent n] returns the
   newest [n] in oldest-first order (clamping n to [0, length]). *)
let prop_ring_rev_recent_model =
  QCheck.Test.make ~name:"ring iter_rev/recent match the list model"
    ~count:500
    QCheck.(pair (int_range 1 8) (small_list small_nat))
    (fun (cap, xs) ->
      let r = Trace.Ring.create ~capacity:cap in
      List.iter (Trace.Ring.push r) xs;
      let total = List.length xs in
      let kept = List.filteri (fun i _ -> i >= total - cap) xs in
      let rebuilt = ref [] in
      Trace.Ring.iter_rev r (fun x -> rebuilt := x :: !rebuilt);
      !rebuilt = kept
      && List.for_all
           (fun n ->
             let keep = min (max n 0) (List.length kept) in
             Trace.Ring.recent r n
             = List.filteri (fun i _ -> i >= List.length kept - keep) kept)
           [ -1; 0; 1; (cap / 2) + 1; cap; cap + 3 ])

(* ---------------- null sink ---------------- *)

let test_null_sink () =
  Alcotest.(check bool) "disabled" false (Trace.enabled Trace.null);
  Trace.emit Trace.null ~time:1 ~cpu:0 Trace.Event.Alloc_hit;
  Trace.record_lifetime Trace.null 42;
  Alcotest.(check int) "no events" 0 (Trace.total_events Trace.null);
  Alcotest.(check int) "no samples" 0
    (Trace.Hist.count (Trace.lifetime Trace.null))

let test_emit_merge_order () =
  let tr = Trace.create ~ring_capacity:8 ~ncpus:2 () in
  Trace.emit tr ~time:30 ~cpu:1 Trace.Event.Alloc_hit;
  Trace.emit tr ~time:10 ~cpu:0 Trace.Event.Alloc_miss;
  Trace.emit tr ~time:20 ~cpu:(-1) ~arg:7 Trace.Event.Gp_start;
  let times = List.map (fun (e : Trace.Event.t) -> e.Trace.Event.time)
      (Trace.events tr) in
  Alcotest.(check (list int)) "merged by time" [ 10; 20; 30 ] times;
  Alcotest.(check int) "total" 3 (Trace.total_events tr)

(* ---------------- traced mini-run ---------------- *)

let tiny =
  {
    Core.Experiments.default_params with
    Core.Experiments.scale = 0.03;
    cpus = 2;
  }

let traced_runs = lazy (
  match Core.Experiments.run_traced tiny "fig6" with
  | Some runs -> runs
  | None -> Alcotest.fail "fig6 not traceable")

(* Grace periods are strictly sequential: starts and ends must alternate,
   every end matches the latest start's cookie, and virtual time never
   goes backwards across the pairs. *)
let test_gp_pairs_nest () =
  List.iter
    (fun (label, tr) ->
      let gps =
        List.filter
          (fun (e : Trace.Event.t) ->
            e.Trace.Event.kind = Trace.Event.Gp_start
            || e.Trace.Event.kind = Trace.Event.Gp_end)
          (Trace.events tr)
      in
      Alcotest.(check bool) (label ^ " saw grace periods") true
        (List.length gps > 2);
      let open_gp = ref None in
      let last_time = ref 0 in
      List.iter
        (fun (e : Trace.Event.t) ->
          Alcotest.(check bool)
            (label ^ " time monotone") true
            (e.Trace.Event.time >= !last_time);
          last_time := e.Trace.Event.time;
          match (e.Trace.Event.kind, !open_gp) with
          | Trace.Event.Gp_start, None ->
              open_gp := Some e.Trace.Event.arg
          | Trace.Event.Gp_start, Some _ ->
              Alcotest.failf "%s: nested Gp_start at %d" label
                e.Trace.Event.time
          | Trace.Event.Gp_end, Some seq ->
              Alcotest.(check int) (label ^ " end matches start") seq
                e.Trace.Event.arg;
              open_gp := None
          | Trace.Event.Gp_end, None ->
              Alcotest.failf "%s: Gp_end without start at %d" label
                e.Trace.Event.time
          | _ -> ())
        gps)
    (Lazy.force traced_runs)

let test_traced_lifetimes () =
  let runs = Lazy.force traced_runs in
  let hist label = Trace.lifetime (List.assoc label runs) in
  Alcotest.(check bool) "prudence reuses deferred objects" true
    (Trace.Hist.count (hist "prudence") > 0);
  (* The headline acceptance shape: deferred objects wait longer under
     the baseline than under Prudence. *)
  if Trace.Hist.count (hist "slub") > 0 then
    Alcotest.(check bool) "slub lifetimes exceed prudence's" true
      (Trace.Hist.percentile (hist "slub") 50.
      >= Trace.Hist.percentile (hist "prudence") 50.)

let test_tracing_is_pure_observation () =
  (* Same experiment, tracing on vs off: virtual results must be bit-
     identical (tracing charges no virtual time). *)
  let run trace =
    let p = { tiny with Core.Experiments.trace } in
    let slub, prud = Core.Experiments.microbench_pair p ~obj_size:512 in
    ( slub.Workloads.Microbench.pairs_per_sec,
      prud.Workloads.Microbench.pairs_per_sec )
  in
  let off = run None and on_ = run (Some 1024) in
  Alcotest.(check (pair (float 0.) (float 0.))) "identical results" off on_

(* ---------------- Chrome export ---------------- *)

(* No JSON parser in the tree: check structure by hand — balanced
   braces/brackets outside strings, expected top-level keys, and the
   pair-slice phase present. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and escaped = ref false in
  String.iter
    (fun c ->
      if !in_str then
        if !escaped then escaped := false
        else if c = '\\' then escaped := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' -> decr depth
        | _ -> ())
    s;
  (not !in_str) && !depth = 0

let contains ~sub s =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_chrome_export () =
  let json = Trace.Chrome.to_string (Lazy.force traced_runs) in
  Alcotest.(check bool) "balanced" true (json_balanced json);
  Alcotest.(check bool) "traceEvents" true (contains ~sub:"\"traceEvents\"" json);
  Alcotest.(check bool) "metadata" true (contains ~sub:"process_name" json);
  Alcotest.(check bool) "gp slices" true (contains ~sub:"grace-period" json);
  Alcotest.(check bool) "instants" true (contains ~sub:"\"ph\":\"i\"" json)

let test_chrome_escape () =
  let tr = Trace.create ~ring_capacity:8 ~ncpus:1 () in
  Trace.emit tr ~time:1 ~cpu:0 ~label:"we\"ird\\cache\n" Trace.Event.Alloc_hit;
  let json = Trace.Chrome.to_string [ ("r", tr) ] in
  Alcotest.(check bool) "escaped label balanced" true (json_balanced json)

let test_histview_render () =
  let h = Trace.Hist.create () in
  List.iter (Trace.Hist.record h) [ 100; 200; 200; 5_000; 1_000_000 ];
  let s = Metrics.Histview.render ~title:"t" h in
  Alcotest.(check bool) "has summary" true (contains ~sub:"5 samples" s);
  Alcotest.(check bool) "has bars" true (contains ~sub:"|#" s);
  Alcotest.(check string) "empty hist" "e: (no samples)\n"
    (Metrics.Histview.render ~title:"e" (Trace.Hist.create ()));
  (* One bucket: the percentile lines must render without arithmetic on
     absent neighbours. *)
  let one = Trace.Hist.create () in
  Trace.Hist.record one 42;
  let s1 = Metrics.Histview.render ~title:"one" one in
  Alcotest.(check bool) "single bucket summary" true
    (contains ~sub:"1 samples" s1);
  Alcotest.(check bool) "single bucket p50" true (contains ~sub:"p50" s1)

let suite =
  [
    Alcotest.test_case "ring: basic push/iter" `Quick test_ring_basic;
    Alcotest.test_case "ring: overflow drops oldest" `Quick
      test_ring_overflow_drops_oldest;
    Alcotest.test_case "ring: ordering preserved under churn" `Quick
      test_ring_ordering_preserved;
    Alcotest.test_case "ring: rejects capacity <= 0" `Quick
      test_ring_invalid_capacity;
    Alcotest.test_case "hist: exact below 32" `Quick test_hist_exact_below_32;
    Alcotest.test_case "hist: empty" `Quick test_hist_empty;
    Alcotest.test_case "hist: _opt on empty and single bucket" `Quick
      test_hist_opt_queries;
    QCheck_alcotest.to_alcotest prop_ring_rev_recent_model;
    QCheck_alcotest.to_alcotest prop_hist_roundtrip;
    QCheck_alcotest.to_alcotest prop_hist_percentile_monotonic;
    QCheck_alcotest.to_alcotest prop_hist_mean_bounded;
    Alcotest.test_case "null sink is inert" `Quick test_null_sink;
    Alcotest.test_case "emit: events merge in time order" `Quick
      test_emit_merge_order;
    Alcotest.test_case "traced run: GP start/end pairs nest" `Slow
      test_gp_pairs_nest;
    Alcotest.test_case "traced run: lifetime histograms populated" `Slow
      test_traced_lifetimes;
    Alcotest.test_case "tracing is pure observation" `Slow
      test_tracing_is_pure_observation;
    Alcotest.test_case "chrome: export is well-formed" `Slow test_chrome_export;
    Alcotest.test_case "chrome: labels escaped" `Quick test_chrome_escape;
    Alcotest.test_case "histview: renders summary and bars" `Quick
      test_histview_render;
  ]
