(* The profiler's two contracts: (1) a live profiler attributes wall
   time and GC allocation words to spans exactly — including across
   nesting, suspension-style unbalanced exits and per-CPU rows — and
   (2) the null profiler is a true no-op: instrumented runs with
   profiling off replay byte-identically, and the metric registry gains
   prof.* names only when a live profiler is installed. *)

module P = Prof
module S = Prof.Span

(* ------------------------------------------------------------------ *)
(* Null sink                                                           *)
(* ------------------------------------------------------------------ *)

let test_null_noop () =
  Alcotest.(check bool) "null disabled" false (P.enabled P.null);
  P.enter P.null ~cpu:0 S.Slab_alloc;
  P.exit P.null S.Slab_alloc;
  P.exit P.null S.Buddy_free;
  Alcotest.(check int) "no cells" 0 (List.length (P.cells P.null));
  Alcotest.(check int) "no totals" 0 (List.length (P.totals P.null));
  Alcotest.(check int) "no folded paths" 0 (List.length (P.folded P.null));
  Alcotest.(check (float 0.)) "no time" 0. (P.total_self_ns P.null);
  Alcotest.(check (float 0.)) "no words" 0. (P.total_minor_words P.null)

(* ------------------------------------------------------------------ *)
(* Attribution                                                         *)
(* ------------------------------------------------------------------ *)

let cell_of t span =
  List.find_opt (fun (c : P.cell) -> c.P.span = span) (P.totals t)

let test_nesting_and_rows () =
  let t = P.create ~ncpus:2 () in
  Alcotest.(check bool) "enabled" true (P.enabled t);
  for _ = 1 to 5 do
    P.enter t ~cpu:0 S.Engine_dispatch;
    P.enter t ~cpu:1 S.Rcu_qs;
    P.exit t S.Rcu_qs;
    P.exit t S.Engine_dispatch
  done;
  P.enter t ~cpu:(-1) S.Rcu_gp;
  P.exit t S.Rcu_gp;
  (match cell_of t S.Engine_dispatch with
  | None -> Alcotest.fail "dispatch cell missing"
  | Some c -> Alcotest.(check int) "dispatch calls" 5 c.P.calls);
  (match cell_of t S.Rcu_qs with
  | None -> Alcotest.fail "qs cell missing"
  | Some c ->
      Alcotest.(check int) "qs calls" 5 c.P.calls;
      Alcotest.(check bool) "incl >= self" true (c.P.incl_ns >= c.P.self_ns));
  (* Per-row cells: qs on CPU 1, gp on the global row. *)
  let row span =
    List.filter_map
      (fun (c : P.cell) -> if c.P.span = span then Some c.P.cpu else None)
      (P.cells t)
  in
  Alcotest.(check (list int)) "qs on cpu 1" [ 1 ] (row S.Rcu_qs);
  Alcotest.(check (list int)) "gp on global row" [ -1 ] (row S.Rcu_gp);
  (* Folded paths intern parent;child with root-first joining. *)
  let folded = P.folded t in
  Alcotest.(check bool) "nested path present" true
    (List.mem_assoc "engine.dispatch;rcu.qs" folded);
  Alcotest.(check (option int)) "nested path weight" (Some 5)
    (List.assoc_opt "engine.dispatch;rcu.qs" folded);
  Alcotest.(check int) "truncated" 0 (P.truncated t);
  Alcotest.(check int) "dropped exits" 0 (P.dropped_exits t)

let test_alloc_exactness () =
  let t = P.create ~ncpus:1 () in
  let sink = ref [||] in
  for _ = 1 to 1_000 do
    (* Empty inner span nested in an allocating outer span: the probe
       compensation must keep the inner span at zero words while the
       outer sees exactly its own 9-word array (8 slots + header). *)
    P.enter t ~cpu:0 S.Buddy_alloc;
    P.enter t ~cpu:0 S.Buddy_free;
    P.exit t S.Buddy_free;
    sink := Sys.opaque_identity (Array.make 8 0);
    P.exit t S.Buddy_alloc
  done;
  ignore (Sys.opaque_identity !sink);
  let words span =
    match cell_of t span with
    | None -> Alcotest.failf "missing cell %s" (S.name span)
    | Some c -> c.P.self_minor_words /. float_of_int c.P.calls
  in
  (* Attribution is word-exact modulo calibration residue; allow < 1
     word per call of slack against compiler-version codegen noise. *)
  Alcotest.(check bool) "outer sees its 9 words" true
    (Float.abs (words S.Buddy_alloc -. 9.) < 1.);
  Alcotest.(check bool) "empty inner span sees ~0 words" true
    (Float.abs (words S.Buddy_free) < 1.)

let test_unwind_and_orphan_exits () =
  let t = P.create ~ncpus:1 () in
  (* A suspended process abandons Slab_grow; the enclosing dispatch
     exit must unwind it rather than corrupt the stack. *)
  P.enter t ~cpu:0 S.Engine_dispatch;
  P.enter t ~cpu:0 S.Slab_grow;
  P.exit t S.Engine_dispatch;
  (* The resumed process's own exit then matches nothing. *)
  P.exit t S.Slab_grow;
  Alcotest.(check int) "one orphan exit" 1 (P.dropped_exits t);
  (match cell_of t S.Slab_grow with
  | None -> Alcotest.fail "grow cell missing"
  | Some c -> Alcotest.(check int) "grow still counted once" 1 c.P.calls);
  (* The stack is clean: a fresh balanced pair still pairs up. *)
  P.enter t ~cpu:0 S.Slab_alloc;
  P.exit t S.Slab_alloc;
  Alcotest.(check int) "no further orphans" 1 (P.dropped_exits t)

let test_reset () =
  let t = P.create ~ncpus:1 () in
  P.enter t ~cpu:0 S.Slab_alloc;
  P.exit t S.Slab_alloc;
  Alcotest.(check bool) "has cells" true (P.totals t <> []);
  P.reset t;
  Alcotest.(check int) "reset clears totals" 0 (List.length (P.totals t));
  Alcotest.(check int) "reset clears paths" 0 (List.length (P.folded t));
  P.enter t ~cpu:0 S.Slab_alloc;
  P.exit t S.Slab_alloc;
  Alcotest.(check int) "usable after reset" 1 (List.length (P.totals t))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_enum () =
  Alcotest.(check int) "all spans" S.count (List.length S.all);
  List.iteri
    (fun i s -> Alcotest.(check int) "index round-trip" i (S.index s))
    S.all;
  List.iter
    (fun s ->
      let sub = S.subsystem s in
      Alcotest.(check bool)
        (Printf.sprintf "subsystem %s listed" sub)
        true
        (List.mem sub S.subsystems))
    S.all

(* ------------------------------------------------------------------ *)
(* Replay acceptance: profiling off must not perturb the simulation,   *)
(* and profiling on must not perturb the deterministic counters.       *)
(* ------------------------------------------------------------------ *)

let small_params =
  { Wallclock.default_params with Wallclock.scale = 0.01; cpus = 2 }

let registry_table env =
  let r = Stats.Registry.create () in
  Stats.Providers.register_env r env;
  Stats.Registry.table r

let test_replay_identical () =
  let run prof =
    let env, updates =
      Wallclock.run_once ~prof small_params Wallclock.Endurance
        Workloads.Env.Prudence_alloc
    in
    (Wallclock.counters_of env updates, registry_table env)
  in
  let c_off1, table_off1 = run P.null in
  let c_off2, table_off2 = run P.null in
  Alcotest.(check bool) "prof-off counters replay-stable" true
    (c_off1 = c_off2);
  Alcotest.(check string) "prof-off registry byte-identical" table_off1
    table_off2;
  let c_on, _table_on = run (P.create ~ncpus:2 ()) in
  Alcotest.(check bool) "prof-on counters equal prof-off" true
    (c_off1 = c_on)

let contains_prof s =
  let sub = "prof." in
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_registry_gains_prof_only_when_enabled () =
  let run prof =
    let env, _ =
      Wallclock.run_once ~prof small_params Wallclock.Endurance
        Workloads.Env.Prudence_alloc
    in
    let r = Stats.Registry.create () in
    Stats.Providers.register_env r env;
    Stats.Registry.names r
  in
  let off = run P.null in
  let on = run (P.create ~ncpus:2 ()) in
  let prof_names = List.filter (fun n -> contains_prof n) in
  Alcotest.(check (list string)) "no prof.* rows when off" [] (prof_names off);
  Alcotest.(check bool) "prof.* rows when on" true (prof_names on <> []);
  Alcotest.(check bool) "allocs_per_event registered" true
    (List.mem "prof.allocs_per_event" on);
  (* Everything else is unchanged: the prof rows are a pure addition. *)
  Alcotest.(check (list string)) "non-prof rows identical" off
    (List.filter (fun n -> not (contains_prof n)) on)

let suite =
  [
    Alcotest.test_case "null profiler is a no-op" `Quick test_null_noop;
    Alcotest.test_case "nesting, rows and folded paths" `Quick
      test_nesting_and_rows;
    Alcotest.test_case "allocation attribution is word-exact" `Quick
      test_alloc_exactness;
    Alcotest.test_case "unbalanced exits unwind safely" `Quick
      test_unwind_and_orphan_exits;
    Alcotest.test_case "reset" `Quick test_reset;
    Alcotest.test_case "span enum closed over subsystems" `Quick
      test_span_enum;
    Alcotest.test_case "replay: prof off is byte-identical, prof on \
                        preserves counters" `Slow test_replay_identical;
    Alcotest.test_case "registry gains prof.* only when enabled" `Slow
      test_registry_gains_prof_only_when_enabled;
  ]
