(* lib/obs: grace-period anatomy schema, recorder purity, and the
   forensic-bundle pipeline (determinism + postmortem rendering). *)

module W = Workloads
module Sweep = Check.Sweep

let small_params =
  { Core.Chaos.seed = 42; cpus = 4; scale = 0.01; ring = 2_048 }

(* Every backend reports the same five-phase schema: per phase, the
   sample count equals the reuse count (minus drops), and the clamped
   edges make the phase sums add up exactly to the total. *)
let test_anatomy_schema_all_backends () =
  let results = Core.Anatomy.run small_params W.Chaos.Clean in
  Alcotest.(check int) "four backends" 4 (List.length results);
  List.iter
    (fun (r : Core.Anatomy.result) ->
      let label = W.Env.kind_label r.Core.Anatomy.kind in
      let obs = r.Core.Anatomy.obs in
      Alcotest.(check bool) (label ^ ": recorder armed") true
        (Obs.Anatomy.enabled obs);
      let reuses = Obs.Anatomy.reuses obs in
      Alcotest.(check bool) (label ^ ": observed reuses") true (reuses > 0);
      Alcotest.(check int) (label ^ ": no dropped tokens") 0
        (Obs.Anatomy.dropped obs);
      let total = Obs.Anatomy.total_hist obs in
      List.iter
        (fun p ->
          let h = Obs.Anatomy.phase_hist obs p in
          Alcotest.(check int)
            (Printf.sprintf "%s: %s count" label (Obs.Phase.name p))
            (Trace.Hist.count total) (Trace.Hist.count h))
        Obs.Phase.all;
      Alcotest.(check int)
        (label ^ ": phase sums == total, exactly")
        (Trace.Hist.sum total)
        (Core.Anatomy.phase_sum obs))
    results;
  Alcotest.(check bool) "sum identity verdict" true
    (Core.Anatomy.sum_identity_ok results)

(* The RCU-backed schemes must attribute QS collection to real grace
   periods: the worst completed GP names a holdout CPU. *)
let test_worst_gp_names_holdout () =
  let results =
    Core.Anatomy.run ~kinds:[ W.Env.Baseline; W.Env.Prudence_alloc ]
      small_params W.Chaos.Clean
  in
  List.iter
    (fun (r : Core.Anatomy.result) ->
      match Obs.Anatomy.worst_gp r.Core.Anatomy.obs with
      | None -> Alcotest.fail "no completed grace period recorded"
      | Some g ->
          Alcotest.(check bool) "holdout cpu named" true
            (g.Obs.Anatomy.holdout_cpu >= 0);
          Alcotest.(check bool) "complete after start" true
            (g.Obs.Anatomy.complete_ns >= g.Obs.Anatomy.start_ns))
    results

(* Pure observation: arming the recorder must not change any
   deterministic outcome of the run. *)
let test_recorder_off_identical_counters () =
  let cfg = Core.Chaos.config_for small_params W.Chaos.Clean in
  let on = W.Chaos.run_one { cfg with W.Chaos.obs = true } W.Env.Prudence_alloc
  and off =
    W.Chaos.run_one { cfg with W.Chaos.obs = false } W.Env.Prudence_alloc
  in
  Alcotest.(check int) "updates" off.W.Chaos.updates on.W.Chaos.updates;
  Alcotest.(check int) "gp p99" off.W.Chaos.gp_p99_ns on.W.Chaos.gp_p99_ns;
  Alcotest.(check int) "stall warnings" off.W.Chaos.stall_warnings
    on.W.Chaos.stall_warnings;
  Alcotest.(check int) "safety violations" off.W.Chaos.safety_violations
    on.W.Chaos.safety_violations;
  Alcotest.(check (float 0.0)) "peak MiB" off.W.Chaos.peak_used_mib
    on.W.Chaos.peak_used_mib;
  Alcotest.(check (float 0.0)) "final MiB" off.W.Chaos.final_used_mib
    on.W.Chaos.final_used_mib;
  Alcotest.(check bool) "recorder off is null" false
    (Obs.Anatomy.enabled off.W.Chaos.env.W.Env.obs);
  Alcotest.(check bool) "recorder on saw traffic" true
    (Obs.Anatomy.reuses on.W.Chaos.env.W.Env.obs > 0)

let bundle_case_config dir =
  {
    Sweep.default_config with
    Sweep.scenarios = [ W.Chaos.Clean ];
    kinds = [ W.Env.Prudence_alloc ];
    sweeps = 1;
    cpus = 2;
    duration_ns = 5_000_000;
    mutation = Sweep.Skip_gp;
    bundle_dir = Some dir;
  }

let bundle_case =
  { Sweep.scenario = W.Chaos.Clean; kind = W.Env.Prudence_alloc;
    shuffle_seed = 1 }

let tmp_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  (try Sys.mkdir d 0o755 with Sys_error _ -> ());
  d

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Same seed + same violation => byte-identical bundle NDJSON. *)
let test_bundle_deterministic () =
  let run dir =
    let v = Sweep.run_case (bundle_case_config dir) bundle_case in
    Alcotest.(check bool) "case fails under skip-gp" false (Sweep.ok v);
    match v.Sweep.bundle with
    | None -> Alcotest.fail "failing case produced no bundle"
    | Some path -> read_file path
  in
  let a = run (tmp_dir "obs-bundle-a") in
  let b = run (tmp_dir "obs-bundle-b") in
  Alcotest.(check bool) "bundle non-empty" true (String.length a > 0);
  Alcotest.(check string) "byte-identical across re-runs" a b

(* A passing case writes nothing even with the dump armed. *)
let test_no_bundle_on_pass () =
  let dir = tmp_dir "obs-bundle-pass" in
  let cfg =
    { (bundle_case_config dir) with Sweep.mutation = Sweep.No_mutation }
  in
  let v = Sweep.run_case cfg bundle_case in
  Alcotest.(check bool) "clean case passes" true (Sweep.ok v);
  Alcotest.(check bool) "no bundle path" true (v.Sweep.bundle = None)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* The bundle round-trips through the postmortem renderer: the header
   validates, and the timeline names CPUs, offending objects and the
   implicated grace-period cookie. *)
let test_postmortem_renders () =
  let dir = tmp_dir "obs-bundle-render" in
  let v = Sweep.run_case (bundle_case_config dir) bundle_case in
  let path = Option.get v.Sweep.bundle in
  let content = read_file path in
  match Obs.Bundle.render content with
  | Error e -> Alcotest.fail ("render failed: " ^ e)
  | Ok text ->
      List.iter
        (fun sub ->
          Alcotest.(check bool) ("mentions " ^ sub) true (contains ~sub text))
        [
          Obs.Bundle.version; "reason:   oracle-violation"; "timeline";
          "cpu 0:"; "object lineages"; "cookie"; "grace-period anatomy";
          "metric snapshot"; "replay:";
        ]

let test_bundle_rejects_garbage () =
  (match Obs.Bundle.render "not json" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error _ -> ());
  match Obs.Bundle.render "{\"type\":\"bundle\",\"version\":\"nope/9\"}" with
  | Ok _ -> Alcotest.fail "accepted wrong version"
  | Error e ->
      Alcotest.(check bool) "names the version" true
        (contains ~sub:"unsupported bundle version" e)

(* The obs.* metrics register exactly when the recorder is armed, so a
   recorder-off registry snapshot is byte-identical to the seed's. *)
let test_obs_metrics_gated () =
  let cfg = Core.Chaos.config_for small_params W.Chaos.Clean in
  let names on =
    let o = W.Chaos.run_one { cfg with W.Chaos.obs = on } W.Env.Prudence_alloc in
    let reg = Stats.Registry.create () in
    Stats.Providers.register_env reg o.W.Chaos.env;
    List.filter_map
      (fun ((m : Stats.Registry.metric), _) ->
        if String.length m.Stats.Registry.name >= 4
           && String.sub m.Stats.Registry.name 0 4 = "obs."
        then Some m.Stats.Registry.name
        else None)
      (Stats.Registry.read_all reg)
  in
  Alcotest.(check (list string)) "no obs.* metrics when off" [] (names false);
  let on = names true in
  Alcotest.(check bool) "obs.* metrics when armed" true
    (List.mem "obs.qs-collection.p99_ns" on && List.mem "obs.defers" on)

let suite =
  [
    Alcotest.test_case "anatomy: one schema across all four backends" `Slow
      test_anatomy_schema_all_backends;
    Alcotest.test_case "anatomy: worst GP names its holdout CPU" `Slow
      test_worst_gp_names_holdout;
    Alcotest.test_case "recorder off/on: identical deterministic counters"
      `Slow test_recorder_off_identical_counters;
    Alcotest.test_case "bundle: byte-identical across re-runs" `Slow
      test_bundle_deterministic;
    Alcotest.test_case "bundle: none written for passing cases" `Slow
      test_no_bundle_on_pass;
    Alcotest.test_case "postmortem: renders timeline, lineage, anatomy" `Slow
      test_postmortem_renders;
    Alcotest.test_case "bundle: rejects garbage and wrong versions" `Quick
      test_bundle_rejects_garbage;
    Alcotest.test_case "stats: obs.* metrics gated on the recorder" `Slow
      test_obs_metrics_gated;
  ]
