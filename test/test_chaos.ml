module Chaos = Workloads.Chaos

(* Small, fast configs: the full-size matrix is exercised by the [chaos]
   CLI subcommand; here we pin the semantics. *)
let small scenario =
  {
    (Chaos.default_config ~scenario) with
    Chaos.cpus = 4;
    duration_ns = Sim.Clock.ms 100;
    total_pages = 8_192;
    stall_timeout_ns = Sim.Clock.ms 10;
    ring = 4_096;
  }

let test_scenario_names_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check bool) "roundtrip" true
        (Chaos.scenario_of_string (Chaos.scenario_name s) = Some s))
    Chaos.all_scenarios;
  Alcotest.(check bool) "unknown rejected" true
    (Chaos.scenario_of_string "nope" = None)

let test_clean_plan_is_empty () =
  let plan = Chaos.plan_for (small Chaos.Clean) in
  Alcotest.(check int) "no specs" 0 (List.length plan.Faults.Plan.specs)

let test_clean_scenario_quiet () =
  let slub, prud = Chaos.run_pair (small Chaos.Clean) in
  List.iter
    (fun (o : Chaos.outcome) ->
      Alcotest.(check bool) (o.Chaos.label ^ " survived") true
        o.Chaos.survived;
      Alcotest.(check int) (o.Chaos.label ^ " zero stall warnings") 0
        o.Chaos.stall_warnings;
      Alcotest.(check int) (o.Chaos.label ^ " zero injected failures") 0
        o.Chaos.injected_failures;
      Alcotest.(check int) (o.Chaos.label ^ " zero violations") 0
        o.Chaos.safety_violations;
      Alcotest.(check bool) (o.Chaos.label ^ " did work") true
        (o.Chaos.updates > 0))
    [ slub; prud ]

let test_stalled_reader_detected () =
  let cfg = small Chaos.Stalled_reader in
  let _slub, prud = Chaos.run_pair cfg in
  Alcotest.(check bool) "stall warnings fired" true
    (prud.Chaos.stall_warnings >= 1);
  (* The plan stalls cpu [min 2 (cpus-1)] = 2: warnings must name it and
     no other cpu. *)
  Alcotest.(check (list int)) "holdout is the stalled cpu" [ 2 ]
    prud.Chaos.holdout_cpus;
  Alcotest.(check int) "no premature reuse" 0 prud.Chaos.safety_violations

(* Everything except the live [env] handle, which holds closures and is
   not comparable. *)
let fields (o : Chaos.outcome) =
  ( ( o.Chaos.label,
      o.Chaos.scenario,
      o.Chaos.survived,
      o.Chaos.oom_at_ns,
      o.Chaos.updates,
      o.Chaos.stall_warnings,
      o.Chaos.holdout_cpus,
      o.Chaos.gp_p99_ns,
      o.Chaos.grow_retries ),
    ( o.Chaos.emergency_flushes,
      o.Chaos.emergency_flushed_objs,
      o.Chaos.ooms_delayed,
      o.Chaos.max_backlog,
      o.Chaos.injected_failures,
      o.Chaos.flood_cbs,
      o.Chaos.safety_violations,
      o.Chaos.peak_used_mib,
      o.Chaos.final_used_mib ) )

let test_deterministic () =
  let cfg = small Chaos.Alloc_fault in
  let a1, b1 = Chaos.run_pair cfg in
  let a2, b2 = Chaos.run_pair cfg in
  Alcotest.(check bool) "baseline outcome identical" true
    (fields a1 = fields a2);
  Alcotest.(check bool) "prudence outcome identical" true
    (fields b1 = fields b2)

let suite =
  [
    Alcotest.test_case "scenario names roundtrip" `Quick
      test_scenario_names_roundtrip;
    Alcotest.test_case "clean plan is empty" `Quick test_clean_plan_is_empty;
    Alcotest.test_case "clean scenario quiet" `Quick test_clean_scenario_quiet;
    Alcotest.test_case "stalled reader detected" `Quick
      test_stalled_reader_detected;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
