(* Cross-backend SMR conformance battery: the same safety and liveness
   contract, checked against every registered reclamation scheme — the
   RCU-backed baseline and Prudence, EBR/DEBRA and Hyaline. A backend
   that passes shows (1) no token ripens while a covering reader window
   is open, (2) settle drains every deferred object, (3) the allocation
   counters conserve across defer/reclaim, and (4) deferred memory keeps
   allocation alive after exhaustion (OOM forward progress). *)

module W = Workloads
module Smr = Slab.Smr
module Shadow = Check.Shadow
module Audit = Check.Audit

let build ?(kind = W.Env.Baseline) ?(total_pages = 4_096) () =
  W.Env.build
    {
      W.Env.default_config with
      W.Env.kind;
      cpus = 2;
      seed = 7;
      total_pages;
      track_readers = true;
    }

let drive ?(horizon = Sim.Clock.s 20) (env : W.Env.t) body =
  let finished = ref false in
  Sim.Process.spawn env.W.Env.eng (fun () ->
      body ();
      finished := true);
  Sim.Engine.run ~until:horizon env.W.Env.eng;
  if not !finished then Alcotest.fail "driver process did not finish"

let latent_total (env : W.Env.t) =
  let acc = ref 0 in
  env.W.Env.backend.Slab.Backend.iter_caches (fun c ->
      acc := !acc + Slab.Frame.latent_total c);
  !acc

(* Tokens are monotone: later defers never get a smaller token, and the
   ripe frontier only moves forward. *)
let test_token_monotone kind () =
  let env = build ~kind () in
  let smr = env.W.Env.smr in
  drive env (fun () ->
      let last_tok = ref min_int and last_frontier = ref min_int in
      for _ = 1 to 200 do
        let tok = smr.Smr.defer ~cpu:0 in
        Alcotest.(check bool) "token non-decreasing" true (tok >= !last_tok);
        last_tok := tok;
        let f = smr.Smr.ripe_upto () in
        Alcotest.(check bool) "frontier monotone" true (f >= !last_frontier);
        last_frontier := f;
        smr.Smr.advance ();
        Sim.Process.sleep env.W.Env.eng 50_000
      done;
      smr.Smr.request ();
      smr.Smr.wait ();
      Alcotest.(check bool) "every token eventually ripe" true
        (Smr.ripe smr !last_tok))

(* The core safety contract: a token deferred while a reader section is
   open on another CPU must not ripen until that section closes, no
   matter how much time passes or how often advancement is requested. *)
let test_reader_window_blocks_ripening kind () =
  let env = build ~kind () in
  let smr = env.W.Env.smr in
  let c0 = W.Env.cpu env 0 in
  drive env (fun () ->
      Rcu.read_lock env.W.Env.rcu c0;
      let tok = smr.Smr.defer ~cpu:1 in
      smr.Smr.request ();
      (* Give pollers and amortized advancement every chance to run. *)
      for _ = 1 to 20 do
        smr.Smr.advance ();
        Sim.Process.sleep env.W.Env.eng 2_000_000
      done;
      Alcotest.(check bool) "not ripe inside the reader window" false
        (Smr.ripe smr tok);
      Rcu.read_unlock env.W.Env.rcu c0;
      smr.Smr.request ();
      smr.Smr.wait ();
      Alcotest.(check bool) "ripe once the reader is done" true
        (Smr.ripe smr tok))

(* Settle drains everything and the counters conserve: every alloc is
   matched by a deferred free, and after settle no object is live, latent
   or queued anywhere — with the shadow oracle confirming zero safety
   violations along the way. *)
let test_settle_drains_and_conserves kind () =
  let env = build ~kind () in
  let oracle = Shadow.install env in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"conf" ~obj_size:512 in
  let n = 400 in
  drive env (fun () ->
      for i = 0 to n - 1 do
        let c = W.Env.cpu env (i mod 2) in
        match backend.Slab.Backend.alloc cache c with
        | None -> Alcotest.fail "unexpected OOM"
        | Some o ->
            (* A short covering reader per object keeps the read side hot. *)
            let rc = W.Env.cpu env ((i + 1) mod 2) in
            Rcu.read_lock env.W.Env.rcu rc;
            backend.Slab.Backend.free_deferred cache c o;
            Rcu.read_unlock env.W.Env.rcu rc;
            if i mod 50 = 0 then Sim.Process.sleep env.W.Env.eng 500_000
      done;
      backend.Slab.Backend.settle ());
  let snap = Slab.Slab_stats.snapshot cache.Slab.Frame.stats in
  Alcotest.(check int) "allocs" n snap.Slab.Slab_stats.allocs;
  Alcotest.(check int) "deferred frees" n snap.Slab.Slab_stats.deferred_frees;
  Alcotest.(check int) "nothing live" 0 (Slab.Frame.live_objects cache);
  Alcotest.(check int) "latent drained" 0 (latent_total env);
  Alcotest.(check int) "rcu drained" 0
    (Rcu.pending_callbacks env.W.Env.rcu);
  Alcotest.(check int) "zero violations" 0 (Shadow.violation_count oracle);
  Alcotest.(check bool) "oracle observed the run" true
    (Shadow.events oracle > 0);
  Alcotest.(check (list string)) "audit clean" [] (Audit.env env)

(* OOM forward progress: exhaust physical memory, defer-free everything,
   and allocation must succeed again — deferred memory is a reserve the
   scheme can always recycle, never a leak. *)
let test_oom_forward_progress kind () =
  let env = build ~kind ~total_pages:1_024 () in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"oom" ~obj_size:2048 in
  let c = W.Env.cpu env 0 in
  drive env (fun () ->
      let held = ref [] and full = ref false and guard = ref 0 in
      while (not !full) && !guard < 50_000 do
        incr guard;
        match backend.Slab.Backend.alloc cache c with
        | Some o -> held := o :: !held
        | None -> full := true
      done;
      Alcotest.(check bool) "memory was exhausted" true !full;
      Alcotest.(check bool) "held a real population" true
        (List.length !held > 100);
      List.iter (fun o -> backend.Slab.Backend.free_deferred cache c o) !held;
      backend.Slab.Backend.settle ();
      match backend.Slab.Backend.alloc cache c with
      | Some _ -> ()
      | None -> Alcotest.fail "allocation still failing after settle")

let per_kind name f =
  List.map
    (fun kind ->
      Alcotest.test_case
        (Printf.sprintf "%s [%s]" name (W.Env.kind_label kind))
        `Quick (f kind))
    W.Env.all_kinds

let suite =
  per_kind "tokens monotone, eventually ripe" test_token_monotone
  @ per_kind "reader window blocks ripening" test_reader_window_blocks_ripening
  @ per_kind "settle drains, counters conserve" test_settle_drains_and_conserves
  @ per_kind "OOM forward progress" test_oom_forward_progress
