(* The robustness toolkit: the kernel-bug oracle catalogue (each oracle
   proved necessary by its mutation self-test), coverage-guided fuzzing,
   witness minimization, bounded violation logs, and the fault-plan
   mutation API. *)

module W = Workloads
module Sweep = Check.Sweep
module Fuzz = Check.Fuzz
module Minimize = Check.Minimize
module Plan = Faults.Plan

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

(* One (scenario, allocator) pair known to trigger the given mutation's
   bug class (probed empirically; kept small for test speed). *)
let witness_cfg mutation scenario kind =
  {
    Sweep.default_config with
    Sweep.scenarios = [ scenario ];
    kinds = [ kind ];
    sweeps = 1;
    cpus = 4;
    duration_ns = Sim.Clock.ms 20;
    total_pages = 4_096;
    mutation;
  }

let witness_case scenario kind =
  { Sweep.scenario; kind; shuffle_seed = 1 }

(* An oracle has teeth iff its mutant fails, and it is *necessary* iff the
   same mutant passes with only that oracle disabled: nothing else in the
   verification stack sees the bug. *)
let necessity ~mutation ~scenario ~kind ~disable ~fired () =
  let cfg = witness_cfg mutation scenario kind in
  let case = witness_case scenario kind in
  let v = Sweep.run_case cfg case in
  Alcotest.(check bool) "mutant caught with the oracle on" false (Sweep.ok v);
  Alcotest.(check bool) "the intended oracle fired" true (fired v);
  Alcotest.(check bool) "replay carries the mutation" true
    (contains ~affix:("--mutate=" ^ Sweep.mutation_name mutation) v.Sweep.replay);
  Alcotest.(check bool) "replay carries the workload seed" true
    (contains ~affix:"--seed=42" v.Sweep.replay);
  let off = { cfg with Sweep.oracles = disable cfg.Sweep.oracles } in
  let v' = Sweep.run_case off case in
  if not (Sweep.ok v') then
    Alcotest.failf "mutant still caught with the oracle off: %s"
      (Format.asprintf "%a" Sweep.pp_verdict v')

let test_missed_qs_necessity () =
  necessity ~mutation:Sweep.Drop_stall ~scenario:W.Chaos.Stalled_reader
    ~kind:W.Env.Prudence_alloc
    ~disable:(fun o -> { o with Sweep.missed_qs = false })
    ~fired:(fun v -> v.Sweep.stall_violations <> [])
    ()

let test_cb_conservation_necessity () =
  necessity ~mutation:Sweep.Lose_cb ~scenario:W.Chaos.Cb_flood
    ~kind:W.Env.Prudence_alloc
    ~disable:(fun o -> { o with Sweep.cb_conservation = false })
    ~fired:(fun v -> v.Sweep.cb_violations <> [])
    ()

let test_page_reuse_necessity () =
  necessity ~mutation:Sweep.Free_latent_page ~scenario:W.Chaos.Pressure_spike
    ~kind:W.Env.Prudence_alloc
    ~disable:(fun o -> { o with Sweep.page_reuse = false })
    ~fired:(fun v ->
      List.exists
        (fun viol ->
          match viol.Check.Shadow.kind with
          | Check.Shadow.Page_reuse _ -> true
          | _ -> false)
        v.Sweep.oracle_violations)
    ()

(* Violation logs are first-K bounded; the overflow is counted, not
   silently dropped. Lose-cb under a callback flood overflows the
   conservation oracle's log. *)
let test_violation_logs_bounded () =
  let cfg = witness_cfg Sweep.Lose_cb W.Chaos.Cb_flood W.Env.Prudence_alloc in
  let v = Sweep.run_case cfg (witness_case W.Chaos.Cb_flood W.Env.Prudence_alloc) in
  Alcotest.(check bool) "log capped" true
    (List.length v.Sweep.cb_violations <= 16);
  Alcotest.(check bool) "overflow counted" true (v.Sweep.dropped_violations > 0)

let test_reader_log_bounded () =
  let env = Test_util.make_env ~cpus:2 () in
  let readers = Rcu.Readers.create env.Test_util.rcu in
  for i = 1 to Rcu.Readers.max_logged_violations + 10 do
    Rcu.Readers.record_violation readers (Printf.sprintf "synthetic %d" i)
  done;
  Alcotest.(check int) "first K kept" Rcu.Readers.max_logged_violations
    (List.length (Rcu.Readers.violations readers));
  Alcotest.(check int) "rest counted" 10
    (Rcu.Readers.dropped_violations readers);
  Alcotest.(check bool) "oldest first" true
    (List.hd (Rcu.Readers.violations readers) = "synthetic 1")

let small_fuzz =
  {
    Fuzz.base =
      {
        Sweep.default_config with
        Sweep.scenarios = [ W.Chaos.Clean; W.Chaos.Pressure_spike ];
        kinds = [ W.Env.Prudence_alloc ];
        cpus = 2;
        duration_ns = Sim.Clock.ms 10;
        total_pages = 4_096;
      };
    budget = 10;
    seed = 5;
    stop_on_failure = true;
  }

let input_key (i : Fuzz.input) =
  ( W.Chaos.scenario_name i.Fuzz.scenario,
    W.Env.kind_label i.Fuzz.kind,
    i.Fuzz.shuffle_seed,
    i.Fuzz.duration_ns,
    i.Fuzz.cpus,
    Option.map Plan.to_compact i.Fuzz.plan )

(* Same (config, seed, budget): the whole campaign replays record for
   record — inputs, coverage deltas, corpus growth, verdicts. *)
let test_fuzz_deterministic () =
  let a = Fuzz.run small_fuzz and b = Fuzz.run small_fuzz in
  Alcotest.(check int) "same executed" a.Fuzz.executed b.Fuzz.executed;
  Alcotest.(check int) "same features" a.Fuzz.total_features
    b.Fuzz.total_features;
  List.iter2
    (fun (ra : Fuzz.record) (rb : Fuzz.record) ->
      Alcotest.(check int) "exec" ra.Fuzz.exec rb.Fuzz.exec;
      Alcotest.(check string) "origin" (Fuzz.origin_name ra.Fuzz.origin)
        (Fuzz.origin_name rb.Fuzz.origin);
      Alcotest.(check bool) "input" true
        (input_key ra.Fuzz.input = input_key rb.Fuzz.input);
      Alcotest.(check bool) "verdict" (Sweep.ok ra.Fuzz.verdict)
        (Sweep.ok rb.Fuzz.verdict);
      Alcotest.(check int) "new features" ra.Fuzz.new_features
        rb.Fuzz.new_features;
      Alcotest.(check int) "corpus" ra.Fuzz.corpus_size rb.Fuzz.corpus_size)
    a.Fuzz.records b.Fuzz.records

(* The campaign actually fuzzes: past the seed corpus, mutated inputs run
   and some earn their way into the corpus. *)
let test_fuzz_explores () =
  let r = Fuzz.run { small_fuzz with Fuzz.budget = 12 } in
  Alcotest.(check int) "budget honoured" 12 r.Fuzz.executed;
  Alcotest.(check bool) "mutants executed" true
    (List.exists
       (fun (rec_ : Fuzz.record) ->
         match rec_.Fuzz.origin with Fuzz.Mutated _ -> true | _ -> false)
       r.Fuzz.records);
  Alcotest.(check bool) "coverage accumulated" true (r.Fuzz.total_features > 0);
  Alcotest.(check bool) "corpus grew past nothing" true (r.Fuzz.corpus <> [])

(* Acceptance: under an injected bug, guided fuzzing reaches a failure in
   fewer executions than the brute-force 20-sweep matrix walk. *)
let test_fuzz_beats_brute_force () =
  let base =
    {
      Sweep.default_config with
      Sweep.duration_ns = Sim.Clock.ms 20;
      total_pages = 4_096;
      mutation = Sweep.Free_latent_page;
    }
  in
  let fuzz =
    Fuzz.run { Fuzz.base; budget = 200; seed = 1; stop_on_failure = true }
  in
  (match fuzz.Fuzz.failure with
  | None -> Alcotest.fail "fuzzer never found the injected bug"
  | Some _ -> ());
  (* Brute force: the default sweep order, counting runs to first blood. *)
  let brute = ref 0 and found = ref false in
  List.iter
    (fun case ->
      if not !found then begin
        incr brute;
        if not (Sweep.ok (Sweep.run_case base case)) then found := true
      end)
    (Sweep.cases base);
  Alcotest.(check bool) "brute force finds it too" true !found;
  if fuzz.Fuzz.executed >= !brute then
    Alcotest.failf "guided took %d executions, brute force %d"
      fuzz.Fuzz.executed !brute

(* The minimizer only keeps shrinks that still fail, and its final replay
   carries the pinned plan. *)
let test_minimizer_shrinks_witness () =
  let cfg =
    witness_cfg Sweep.Free_latent_page W.Chaos.Pressure_spike
      W.Env.Prudence_alloc
  in
  let case = witness_case W.Chaos.Pressure_spike W.Env.Prudence_alloc in
  let m = Minimize.run cfg case in
  Alcotest.(check bool) "duration shrank" true
    (m.Minimize.cfg.Sweep.duration_ns < cfg.Sweep.duration_ns);
  Alcotest.(check bool) "still fails" false (Sweep.ok m.Minimize.verdict);
  Alcotest.(check bool) "replay pins the plan" true
    (contains ~affix:"--plan='" m.Minimize.replay);
  Alcotest.(check bool) "runs counted" true
    (m.Minimize.runs >= List.length m.Minimize.steps);
  (* The minimal witness reproduces: run the exact shrunk config again. *)
  Alcotest.(check bool) "shrunk witness reproduces" false
    (Sweep.ok (Sweep.run_case m.Minimize.cfg m.Minimize.case))

let test_minimizer_rejects_passing_case () =
  let cfg = witness_cfg Sweep.No_mutation W.Chaos.Clean W.Env.Prudence_alloc in
  match Minimize.run cfg (witness_case W.Chaos.Clean W.Env.Prudence_alloc) with
  | _ -> Alcotest.fail "minimizer accepted a passing case"
  | exception Minimize.Not_a_witness -> ()

(* --- fault-plan mutation API properties --- *)

let plan_cpus = 4
let plan_duration = Sim.Clock.ms 50

let base_plan =
  Plan.make ~seed:3
    [
      Plan.Stalled_reader
        { cpu = 1; at_ns = Sim.Clock.ms 2; hold_ns = Some (Sim.Clock.ms 3) };
      Plan.Cpu_stall
        { cpu = 0; at_ns = Sim.Clock.ms 1; duration_ns = Sim.Clock.ms 4 };
      Plan.Alloc_fault
        { at_ns = Sim.Clock.ms 5; duration_ns = Sim.Clock.ms 2;
          fail_prob = 0.25 };
      Plan.Pressure_spike
        { at_ns = Sim.Clock.ms 3; duration_ns = Sim.Clock.ms 6; pages = 100 };
      Plan.Cb_flood
        { cpu = 2; at_ns = Sim.Clock.ms 4; duration_ns = Sim.Clock.ms 8;
          per_ms = 50 };
    ]

(* Plans are generated by walking the mutation API itself: every reachable
   mutant is a plan the fuzzer could actually produce. *)
let plan_of_salts salts =
  List.fold_left
    (fun p salt ->
      Plan.mutate ~salt ~cpus:plan_cpus ~duration_ns:plan_duration p)
    base_plan salts

let salts_arb = QCheck.(list_of_size Gen.(0 -- 12) (int_bound 1_000_000))

let prop_mutants_well_formed =
  QCheck.Test.make ~name:"plan: every reachable mutant validates" ~count:200
    salts_arb (fun salts ->
      Plan.validate ~cpus:plan_cpus ~duration_ns:plan_duration
        (plan_of_salts salts)
      = Ok ())

let prop_mutation_deterministic =
  QCheck.Test.make ~name:"plan: same salt, same mutant" ~count:200 salts_arb
    (fun salts -> plan_of_salts salts = plan_of_salts salts)

let prop_compact_roundtrip =
  QCheck.Test.make ~name:"plan: compact encoding round-trips" ~count:200
    salts_arb (fun salts ->
      let p = plan_of_salts salts in
      Plan.of_compact (Plan.to_compact p) = Ok p)

let suite =
  [
    Alcotest.test_case "oracle necessity: missed-QS stall" `Quick
      test_missed_qs_necessity;
    Alcotest.test_case "oracle necessity: callback conservation" `Quick
      test_cb_conservation_necessity;
    Alcotest.test_case "oracle necessity: premature page reuse" `Quick
      test_page_reuse_necessity;
    Alcotest.test_case "violation logs are first-K bounded" `Quick
      test_violation_logs_bounded;
    Alcotest.test_case "reader violation log bounded" `Quick
      test_reader_log_bounded;
    Alcotest.test_case "fuzz: campaign is deterministic" `Quick
      test_fuzz_deterministic;
    Alcotest.test_case "fuzz: mutates and accumulates coverage" `Quick
      test_fuzz_explores;
    Alcotest.test_case "fuzz: guided beats brute force" `Quick
      test_fuzz_beats_brute_force;
    Alcotest.test_case "minimize: witness shrinks and reproduces" `Quick
      test_minimizer_shrinks_witness;
    Alcotest.test_case "minimize: passing case rejected" `Quick
      test_minimizer_rejects_passing_case;
    QCheck_alcotest.to_alcotest prop_mutants_well_formed;
    QCheck_alcotest.to_alcotest prop_mutation_deterministic;
    QCheck_alcotest.to_alcotest prop_compact_roundtrip;
  ]
