(* The verification subsystem itself: shadow-heap oracle lifecycle, the
   auditors, schedule sweeps, differential replay — and the mutation
   self-tests proving the oracle actually fires on broken reclamation. *)

module W = Workloads
module Shadow = Check.Shadow
module Audit = Check.Audit
module Sweep = Check.Sweep
module Diff = Check.Differential

let contains ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let build ?(kind = W.Env.Baseline) ?(track_readers = true)
    ?(prudence_config = Prudence.default_config) () =
  W.Env.build
    {
      W.Env.default_config with
      W.Env.kind;
      cpus = 2;
      seed = 7;
      total_pages = 4_096;
      prudence_config;
      track_readers;
    }

let drive ?(horizon = Sim.Clock.s 2) (env : W.Env.t) body =
  let finished = ref false in
  Sim.Process.spawn env.W.Env.eng (fun () ->
      body ();
      finished := true);
  Sim.Engine.run ~until:horizon env.W.Env.eng;
  if not !finished then Alcotest.fail "driver process did not finish"

let state_name = function
  | None -> "untracked"
  | Some s -> Format.asprintf "%a" Shadow.pp_state s

let check_state oracle ~oid expect =
  Alcotest.(check string) (Printf.sprintf "object %d state" oid) expect
    (state_name (Shadow.state oracle ~oid))

(* live -> deferred -> ripe across a grace period, then back into
   circulation, with zero violations: the oracle observes the full legal
   lifecycle without disturbing it. *)
let test_oracle_lifecycle () =
  let env = build ~kind:W.Env.Prudence_alloc () in
  let oracle = Shadow.install env in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"lc" ~obj_size:256 in
  let c = W.Env.cpu env 0 in
  drive env (fun () ->
      let obj = Option.get (backend.Slab.Backend.alloc cache c) in
      let oid = obj.Slab.Frame.oid in
      check_state oracle ~oid "live";
      backend.Slab.Backend.free_deferred cache c obj;
      (match Shadow.state oracle ~oid with
      | Some (Shadow.Deferred _) -> ()
      | other ->
          Alcotest.failf "expected deferred, got %s" (state_name other));
      Rcu.synchronize env.W.Env.rcu;
      check_state oracle ~oid "ripe";
      (* Allocation pressure merges the ripe object back eventually. *)
      let churn =
        List.init 200 (fun _ -> backend.Slab.Backend.alloc cache c)
      in
      List.iter
        (function
          | Some o -> backend.Slab.Backend.free cache c o | None -> ())
        churn;
      match Shadow.state oracle ~oid with
      | Some (Shadow.Live | Shadow.Reclaimed) -> ()
      | other ->
          Alcotest.failf "expected live or reclaimed after churn, got %s"
            (state_name other));
  Alcotest.(check int) "no violations" 0 (Shadow.violation_count oracle);
  Alcotest.(check bool) "probes fired" true (Shadow.events oracle > 0)

(* A reader derefencing an object after it returned to a free pool must be
   flagged, and only then. *)
let test_oracle_use_after_reclaim () =
  let env = build () in
  let oracle = Shadow.install env in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"uar" ~obj_size:256 in
  let c = W.Env.cpu env 0 in
  let readers = env.W.Env.readers in
  drive env (fun () ->
      let obj = Option.get (backend.Slab.Backend.alloc cache c) in
      let oid = obj.Slab.Frame.oid in
      (* Legal: reading a live object. *)
      Rcu.Readers.with_section readers c (fun () ->
          Rcu.Readers.hold readers c ~oid);
      Alcotest.(check int) "no violation on live access" 0
        (Shadow.violation_count oracle);
      backend.Slab.Backend.free cache c obj;
      check_state oracle ~oid "reclaimed";
      (* Broken: the reader kept a stale pointer past the free. *)
      Rcu.Readers.with_section readers c (fun () ->
          Rcu.Readers.hold readers c ~oid));
  match Shadow.violations oracle with
  | [ { Shadow.kind = Shadow.Use_after_reclaim { cpu = 0 }; oid = _; _ } ] ->
      ()
  | vs ->
      Alcotest.failf "expected one use-after-reclaim, got %d: %s"
        (List.length vs)
        (String.concat "; " (List.map Shadow.describe vs))

(* Mutation self-test: double free. The frame's own assert aborts the
   operation, but the probe fires first, so the oracle must have recorded
   the bad transition by the time the assert trips. *)
let test_oracle_double_free () =
  let env = build () in
  let oracle = Shadow.install env in
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"df" ~obj_size:256 in
  let c = W.Env.cpu env 0 in
  drive env (fun () ->
      let obj = Option.get (backend.Slab.Backend.alloc cache c) in
      backend.Slab.Backend.free cache c obj;
      match backend.Slab.Backend.free cache c obj with
      | () -> Alcotest.fail "double free was not rejected"
      | exception Assert_failure _ -> ());
  Alcotest.(check bool) "oracle saw the double free" true
    (List.exists
       (fun v ->
         match v.Shadow.kind with
         | Shadow.Bad_transition { event = "freed"; _ } -> true
         | _ -> false)
       (Shadow.violations oracle))

let small_sweep =
  {
    Sweep.default_config with
    Sweep.scenarios = [ W.Chaos.Clean; W.Chaos.Cb_flood ];
    sweeps = 2;
    base_shuffle_seed = 11;
    cpus = 2;
    duration_ns = Sim.Clock.ms 10;
    total_pages = 4_096;
  }

(* The sweep matrix at smoke scale: every shuffled schedule of every
   scenario must come back clean on both allocators, having actually done
   work. *)
let test_sweep_smoke () =
  let verdicts = Sweep.run small_sweep in
  Alcotest.(check int) "matrix size" (2 * 2 * 2) (List.length verdicts);
  List.iter
    (fun v ->
      if not (Sweep.ok v) then
        Alcotest.failf "unexpected failure: %s"
          (Format.asprintf "%a" Sweep.pp_verdict v);
      Alcotest.(check bool) "did work" true (v.Sweep.updates > 0);
      Alcotest.(check bool) "probes fired" true (v.Sweep.oracle_events > 0))
    verdicts

(* Same case, same seeds: the verdict must reproduce exactly (this is what
   makes the printed replay command trustworthy). *)
let test_sweep_deterministic_replay () =
  let case =
    { Sweep.scenario = W.Chaos.Cb_flood;
      kind = W.Env.Prudence_alloc;
      shuffle_seed = 13 }
  in
  let a = Sweep.run_case small_sweep case
  and b = Sweep.run_case small_sweep case in
  Alcotest.(check int) "same updates" a.Sweep.updates b.Sweep.updates;
  Alcotest.(check int) "same probe events" a.Sweep.oracle_events
    b.Sweep.oracle_events;
  Alcotest.(check bool) "same verdict" true (Sweep.ok a = Sweep.ok b);
  Alcotest.(check bool) "replay names the shuffle seed" true
    (contains ~affix:"--shuffle-seed=13" a.Sweep.replay)

(* Mutation self-test: reclaim one grace period early (Prudence with
   unsafe_skip_gp pretends everything is ripe). The oracle must fail the
   sweep with early-reuse violations and hand back a replayable seed. *)
let test_sweep_skip_gp_mutation_fires () =
  let cfg =
    {
      small_sweep with
      Sweep.scenarios = [ W.Chaos.Clean ];
      kinds = [ W.Env.Prudence_alloc ];
      sweeps = 1;
      mutation = Sweep.Skip_gp;
    }
  in
  match Sweep.run cfg with
  | [ v ] ->
      Alcotest.(check bool) "verdict fails" false (Sweep.ok v);
      Alcotest.(check bool) "early reuse reported" true
        (List.exists
           (fun viol ->
             match viol.Shadow.kind with
             | Shadow.Early_reuse _ -> true
             | _ -> false)
           v.Sweep.oracle_violations);
      Alcotest.(check bool) "replay command carries the mutation" true
        (contains ~affix:"--mutate=skip-gp" v.Sweep.replay)
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

(* The epoch-backend mutants: each corrupts one backend's grace
   detection while the truthful SMR view stays honest, so the shadow
   oracle's early-reuse check — and only that check — must catch it. *)
let epoch_mutation_cfg kind mutation =
  {
    small_sweep with
    Sweep.scenarios = [ W.Chaos.Stalled_reader ];
    kinds = [ kind ];
    sweeps = 1;
    duration_ns = Sim.Clock.ms 30;
    mutation;
  }

let run_epoch_mutation ?(oracles = Sweep.all_oracles) kind mutation =
  match Sweep.run { (epoch_mutation_cfg kind mutation) with Sweep.oracles } with
  | [ v ] -> v
  | vs -> Alcotest.failf "expected one verdict, got %d" (List.length vs)

let check_epoch_mutation_teeth kind mutation flag =
  let v = run_epoch_mutation kind mutation in
  Alcotest.(check bool) "verdict fails" false (Sweep.ok v);
  Alcotest.(check bool) "early reuse reported" true
    (List.exists
       (fun viol ->
         match viol.Shadow.kind with
         | Shadow.Early_reuse _ -> true
         | _ -> false)
       v.Sweep.oracle_violations);
  Alcotest.(check bool) "replay command carries the mutation" true
    (contains ~affix:("--mutate=" ^ flag) v.Sweep.replay)

let test_skip_epoch_advance_mutation_fires () =
  check_epoch_mutation_teeth W.Env.Ebr_debra Sweep.Skip_epoch_advance
    "skip-epoch-advance"

let test_drop_retire_batch_mutation_fires () =
  check_epoch_mutation_teeth W.Env.Hyaline_alloc Sweep.Drop_retire_batch
    "drop-retire-batch"

(* Necessity: with the early-reuse oracle disabled, the same mutated runs
   pass — no other oracle covers the bug, so early-reuse pulls its
   weight. *)
let test_early_reuse_oracle_necessary () =
  let oracles = { Sweep.all_oracles with Sweep.early_reuse = false } in
  List.iter
    (fun (kind, mutation) ->
      let v = run_epoch_mutation ~oracles kind mutation in
      if not (Sweep.ok v) then
        Alcotest.failf "%s without early-reuse oracle still failed: %s"
          (W.Env.kind_label kind)
          (Format.asprintf "%a" Sweep.pp_verdict v))
    [
      (W.Env.Ebr_debra, Sweep.Skip_epoch_advance);
      (W.Env.Hyaline_alloc, Sweep.Drop_retire_batch);
    ]

(* Auditors pass on a freshly built stack and after real churn. *)
let test_audit_clean () =
  let env = build ~kind:W.Env.Prudence_alloc () in
  Alcotest.(check (list string)) "fresh stack" [] (Audit.env env);
  let backend = env.W.Env.backend in
  let cache = backend.Slab.Backend.create_cache ~name:"aud" ~obj_size:512 in
  let c = W.Env.cpu env 0 in
  drive env (fun () ->
      let objs =
        List.filter_map
          (fun _ -> backend.Slab.Backend.alloc cache c)
          (List.init 300 Fun.id)
      in
      List.iteri
        (fun i o ->
          if i mod 2 = 0 then backend.Slab.Backend.free cache c o
          else backend.Slab.Backend.free_deferred cache c o)
        objs;
      (* Mid-flight audit: deferred objects outstanding. *)
      Alcotest.(check (list string)) "mid-flight" [] (Audit.env env);
      backend.Slab.Backend.settle ());
  Alcotest.(check (list string)) "after settle" [] (Audit.env env)

let test_differential_identical () =
  let trace = Diff.gen ~n_ops:800 ~seed:5 () in
  let r = Diff.run ~seed:5 trace in
  if not r.Diff.ok then
    Alcotest.failf "differential diverged: %s"
      (String.concat "; " r.Diff.mismatches);
  List.iter
    (fun (rp : Diff.replay) ->
      Alcotest.(check bool)
        (rp.Diff.label ^ " finished")
        true rp.Diff.finished)
    r.Diff.replays;
  (* The trace must actually exercise the deferred path. *)
  let deferred =
    Array.fold_left
      (fun n o -> if o = Diff.Deferred_ok then n + 1 else n)
      0 (List.hd r.Diff.replays).Diff.outcomes
  in
  Alcotest.(check bool) "trace defers objects" true (deferred > 50)

let test_differential_trace_deterministic () =
  let a = Diff.gen ~n_ops:400 ~seed:9 () and b = Diff.gen ~n_ops:400 ~seed:9 () in
  Alcotest.(check bool) "same ops" true (a.Diff.ops = b.Diff.ops);
  let c = Diff.gen ~n_ops:400 ~seed:10 () in
  Alcotest.(check bool) "different seed, different ops" true
    (a.Diff.ops <> c.Diff.ops)

let suite =
  [
    Alcotest.test_case "oracle: legal lifecycle is silent" `Quick
      test_oracle_lifecycle;
    Alcotest.test_case "oracle: use after reclaim flagged" `Quick
      test_oracle_use_after_reclaim;
    Alcotest.test_case "mutation: double free flagged" `Quick
      test_oracle_double_free;
    Alcotest.test_case "sweep: smoke matrix clean" `Quick test_sweep_smoke;
    Alcotest.test_case "sweep: verdicts replay deterministically" `Quick
      test_sweep_deterministic_replay;
    Alcotest.test_case "mutation: skip-gp makes the sweep fail" `Quick
      test_sweep_skip_gp_mutation_fires;
    Alcotest.test_case "mutation: skip-epoch-advance caught on ebr-debra"
      `Quick test_skip_epoch_advance_mutation_fires;
    Alcotest.test_case "mutation: drop-retire-batch caught on hyaline" `Quick
      test_drop_retire_batch_mutation_fires;
    Alcotest.test_case "necessity: early-reuse oracle pulls its weight"
      `Quick test_early_reuse_oracle_necessary;
    Alcotest.test_case "auditors: clean stack, clean verdict" `Quick
      test_audit_clean;
    Alcotest.test_case "differential: stacks agree on a trace" `Quick
      test_differential_identical;
    Alcotest.test_case "differential: trace generation deterministic" `Quick
      test_differential_trace_deterministic;
  ]
