let test_initial_state () =
  let b = Mem.Buddy.create ~total_pages:1024 () in
  Alcotest.(check int) "total" 1024 (Mem.Buddy.total_pages b);
  Alcotest.(check int) "used" 0 (Mem.Buddy.used_pages b);
  Alcotest.(check int) "free" 1024 (Mem.Buddy.free_pages b);
  Alcotest.(check int) "page size" 4096 (Mem.Buddy.page_size b);
  Mem.Buddy.check_invariants b

let test_alloc_free_roundtrip () =
  let b = Mem.Buddy.create ~total_pages:1024 () in
  let blk = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check int) "used 8 pages" 8 (Mem.Buddy.used_pages b);
  Alcotest.(check int) "aligned" 0 (blk.Mem.Buddy.page land 7);
  Mem.Buddy.free b blk;
  Alcotest.(check int) "all free again" 0 (Mem.Buddy.used_pages b);
  Mem.Buddy.check_invariants b

let test_no_overlap () =
  let b = Mem.Buddy.create ~total_pages:256 () in
  let seen = Hashtbl.create 256 in
  let blocks = ref [] in
  (try
     while true do
       let blk = Mem.Buddy.alloc_exn b ~order:1 in
       blocks := blk :: !blocks;
       for p = blk.Mem.Buddy.page to blk.Mem.Buddy.page + 1 do
         if Hashtbl.mem seen p then Alcotest.failf "page %d allocated twice" p;
         Hashtbl.add seen p ()
       done
     done
   with Mem.Buddy.Out_of_memory -> ());
  Alcotest.(check int) "all pages handed out" 256 (Hashtbl.length seen);
  List.iter (Mem.Buddy.free b) !blocks;
  Alcotest.(check int) "all returned" 0 (Mem.Buddy.used_pages b);
  Mem.Buddy.check_invariants b

let test_coalescing () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 () in
  (* Fill with order-0, free all, then the whole region must be allocable
     as one order-4 block again. *)
  let blocks = List.init 16 (fun _ -> Mem.Buddy.alloc_exn b ~order:0) in
  Alcotest.(check int) "full" 0 (Mem.Buddy.free_pages b);
  List.iter (Mem.Buddy.free b) blocks;
  let big = Mem.Buddy.alloc_exn b ~order:4 in
  Alcotest.(check int) "coalesced to max order" 0 big.Mem.Buddy.page;
  Mem.Buddy.free b big;
  Mem.Buddy.check_invariants b

let test_split_accounting () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 () in
  let blk = Mem.Buddy.alloc_exn b ~order:0 in
  Alcotest.(check int) "one page used" 1 (Mem.Buddy.used_pages b);
  Mem.Buddy.check_invariants b;
  Mem.Buddy.free b blk;
  Mem.Buddy.check_invariants b

let test_oom () =
  let b = Mem.Buddy.create ~total_pages:8 ~max_order:3 () in
  let _blk = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check (option reject)) "exhausted" None
    (Option.map (fun _ -> ()) (Mem.Buddy.alloc b ~order:0));
  Alcotest.(check int) "failure counted" 1 (Mem.Buddy.failed_allocs b);
  try
    ignore (Mem.Buddy.alloc_exn b ~order:0);
    Alcotest.fail "expected Out_of_memory"
  with Mem.Buddy.Out_of_memory -> ()

let test_double_free_rejected () =
  let b = Mem.Buddy.create ~total_pages:64 () in
  let blk = Mem.Buddy.alloc_exn b ~order:2 in
  Mem.Buddy.free b blk;
  try
    Mem.Buddy.free b blk;
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

let test_peak_tracking () =
  let b = Mem.Buddy.create ~total_pages:64 () in
  let b1 = Mem.Buddy.alloc_exn b ~order:4 in
  let b2 = Mem.Buddy.alloc_exn b ~order:4 in
  Mem.Buddy.free b b1;
  Mem.Buddy.free b b2;
  Alcotest.(check int) "peak" 32 (Mem.Buddy.peak_used_pages b);
  Alcotest.(check int) "used now" 0 (Mem.Buddy.used_pages b)

let test_non_power_of_two_total () =
  let b = Mem.Buddy.create ~total_pages:1000 () in
  Mem.Buddy.check_invariants b;
  let blocks = ref [] in
  (try
     while true do
       blocks := Mem.Buddy.alloc_exn b ~order:0 :: !blocks
     done
   with Mem.Buddy.Out_of_memory -> ());
  Alcotest.(check int) "all 1000 pages usable" 1000 (List.length !blocks);
  List.iter (Mem.Buddy.free b) !blocks;
  Mem.Buddy.check_invariants b

let test_largest_free_order () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 () in
  Alcotest.(check int) "whole region" 4 (Mem.Buddy.largest_free_order b);
  let _b1 = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check int) "half left" 3 (Mem.Buddy.largest_free_order b);
  let _b2 = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check int) "exhausted" (-1) (Mem.Buddy.largest_free_order b)

let test_injected_vs_genuine_failures () =
  let b = Mem.Buddy.create ~total_pages:8 ~max_order:3 () in
  (* A refusing hook: failures are injected, not genuine exhaustion. *)
  Mem.Buddy.set_fail_hook b (Some (fun ~order:_ -> true));
  Alcotest.(check bool) "refused" true (Mem.Buddy.alloc b ~order:0 = None);
  Alcotest.(check bool) "refused again" true (Mem.Buddy.alloc b ~order:1 = None);
  Alcotest.(check int) "injected counted" 2 (Mem.Buddy.injected_failures b);
  Alcotest.(check int) "genuine untouched" 0 (Mem.Buddy.failed_allocs b);
  Alcotest.(check bool) "memory was actually available" true
    (Mem.Buddy.would_satisfy b ~order:0);
  (* Hook removed: allocation works and nothing new is counted. *)
  Mem.Buddy.set_fail_hook b None;
  let blk = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check int) "no new injected" 2 (Mem.Buddy.injected_failures b);
  (* Genuine exhaustion (no hook): failed_allocs, not injected_failures. *)
  Alcotest.(check bool) "exhausted" true (Mem.Buddy.alloc b ~order:0 = None);
  Alcotest.(check int) "genuine counted" 1 (Mem.Buddy.failed_allocs b);
  Alcotest.(check int) "injected unchanged" 2 (Mem.Buddy.injected_failures b);
  Alcotest.(check bool) "nothing would satisfy" false
    (Mem.Buddy.would_satisfy b ~order:0);
  Mem.Buddy.free b blk;
  Mem.Buddy.check_invariants b

let test_would_satisfy_orders () =
  let b = Mem.Buddy.create ~total_pages:16 ~max_order:4 () in
  Alcotest.(check bool) "whole region free" true
    (Mem.Buddy.would_satisfy b ~order:4);
  let blk = Mem.Buddy.alloc_exn b ~order:3 in
  Alcotest.(check bool) "half gone: order 4 unsatisfiable" false
    (Mem.Buddy.would_satisfy b ~order:4);
  Alcotest.(check bool) "order 3 still satisfiable" true
    (Mem.Buddy.would_satisfy b ~order:3);
  Alcotest.(check bool) "smaller orders split from it" true
    (Mem.Buddy.would_satisfy b ~order:0);
  Mem.Buddy.free b blk

let prop_random_alloc_free =
  QCheck.Test.make ~name:"random alloc/free keeps invariants" ~count:60
    QCheck.(list (pair (int_bound 3) bool))
    (fun ops ->
      let b = Mem.Buddy.create ~total_pages:512 () in
      let held = ref [] in
      List.iter
        (fun (order, do_free) ->
          if do_free then (
            match !held with
            | blk :: rest ->
                Mem.Buddy.free b blk;
                held := rest
            | [] -> ())
          else
            match Mem.Buddy.alloc b ~order with
            | Some blk -> held := blk :: !held
            | None -> ())
        ops;
      Mem.Buddy.check_invariants b;
      List.iter (Mem.Buddy.free b) !held;
      Mem.Buddy.check_invariants b;
      Mem.Buddy.used_pages b = 0)

let suite =
  [
    Alcotest.test_case "initial state" `Quick test_initial_state;
    Alcotest.test_case "alloc/free roundtrip" `Quick test_alloc_free_roundtrip;
    Alcotest.test_case "no overlapping blocks" `Quick test_no_overlap;
    Alcotest.test_case "coalescing" `Quick test_coalescing;
    Alcotest.test_case "split accounting" `Quick test_split_accounting;
    Alcotest.test_case "out of memory" `Quick test_oom;
    Alcotest.test_case "double free rejected" `Quick test_double_free_rejected;
    Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
    Alcotest.test_case "non-power-of-two total" `Quick
      test_non_power_of_two_total;
    Alcotest.test_case "largest free order" `Quick test_largest_free_order;
    Alcotest.test_case "injected vs genuine failures" `Quick
      test_injected_vs_genuine_failures;
    Alcotest.test_case "would_satisfy orders" `Quick test_would_satisfy_orders;
    QCheck_alcotest.to_alcotest prop_random_alloc_free;
  ]
