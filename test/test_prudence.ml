open Test_util
module Frame = Slab.Frame
module Stats = Slab.Slab_stats

let make ?(cpus = 2) ?(total_pages = 4096) ?(obj_size = 512) ?config () =
  let env = make_env ~cpus ~total_pages () in
  let pr = Prudence.create ?config env.fenv env.rcu in
  let cache = Prudence.create_cache pr ~name:"test" ~obj_size in
  (env, pr, cache)

let alloc_exn ?(may_wait = false) pr cache cpu =
  match Prudence.alloc pr ~may_wait cache cpu with
  | Some o -> o
  | None -> Alcotest.fail "unexpected OOM"

let test_cache_is_latent_aware () =
  let _env, _pr, cache = make () in
  Alcotest.(check bool) "latent aware" true cache.Frame.latent_aware

let test_alloc_free_roundtrip () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn pr cache c in
  Prudence.free pr cache c obj;
  Alcotest.(check int) "live zero" 0 (Frame.live_objects cache);
  Frame.check_invariants cache

let test_free_deferred_goes_latent () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn pr cache c in
  Prudence.free_deferred pr cache c obj;
  Alcotest.(check bool) "in latent cache" true
    (obj.Frame.ostate = Frame.In_latent_cache);
  Alcotest.(check int) "no rcu callback enqueued" 0
    (Rcu.pending_callbacks env.rcu);
  Alcotest.(check int) "one latent" 1 (Prudence.latent_outstanding pr);
  Frame.check_invariants cache

let test_not_reusable_before_gp () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn pr cache c in
  (* Drain the object cache so the next alloc must look at the latent
     cache. *)
  let pc = Frame.pcpu_for cache c in
  let rest =
    let rec go acc =
      match Frame.pop_ocache pc with
      | Some o ->
          Frame.hand_to_user cache c o;
          go (o :: acc)
      | None -> acc
    in
    go []
  in
  Prudence.free_deferred pr cache c obj;
  let next = alloc_exn pr cache c in
  Alcotest.(check bool) "deferred object not handed out before gp" true
    (next.Frame.oid <> obj.Frame.oid);
  List.iter (fun o -> Prudence.free pr cache c o) (next :: rest);
  Frame.check_invariants cache

let test_reusable_after_gp () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let obj = alloc_exn pr cache c in
  let pc = Frame.pcpu_for cache c in
  (* Empty the object cache (hand objects out) so merges are observable. *)
  let held =
    let rec go acc =
      match Frame.pop_ocache pc with
      | Some o ->
          Frame.hand_to_user cache c o;
          go (o :: acc)
      | None -> acc
    in
    go []
  in
  Prudence.free_deferred pr cache c obj;
  (* Run two full grace periods. *)
  Sim.Engine.run ~until:Sim.(Clock.ms 10) env.eng;
  let next = alloc_exn pr cache c in
  Alcotest.(check int) "deferred object merged and reused" obj.Frame.oid
    next.Frame.oid;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "merge counted" true (s.Stats.merges >= 1);
  List.iter (fun o -> Prudence.free pr cache c o) (next :: held);
  Frame.check_invariants cache

let test_latent_cache_bounded () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let pc = Frame.pcpu_for cache c in
  let n = cache.Frame.latent_cap + 20 in
  let objs = List.init n (fun _ -> alloc_exn pr cache c) in
  List.iter (Prudence.free_deferred pr cache c) objs;
  Alcotest.(check bool)
    (Printf.sprintf "latent cache bounded (%d <= %d)"
       (Slab.Latq.Fifo.length pc.Frame.latent) cache.Frame.latent_cap)
    true
    (Slab.Latq.Fifo.length pc.Frame.latent <= cache.Frame.latent_cap);
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "overflow went to latent slabs" true
    (s.Stats.latent_overflows > 0);
  Frame.check_invariants cache

let test_no_growth_in_steady_state () =
  (* The headline behaviour: with alloc rate = defer rate, Prudence reaches
     an equilibrium and stops growing (Fig. 3 flat line). *)
  let env, pr, cache = make ~total_pages:65536 () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        (* warm up for a few grace periods *)
        let window = ref [] in
        for i = 0 to 2_000 do
          (match Prudence.alloc pr cache c with
          | Some o -> window := o :: !window
          | None -> Alcotest.fail "oom in steady state");
          (* keep ~50 objects alive, defer the rest *)
          (match !window with
          | o :: rest when List.length !window > 50 ->
              Prudence.free_deferred pr cache c o;
              window := rest
          | _ -> ());
          ignore i;
          Sim.Process.sleep env.eng 2_000
        done)
  in
  check_completed "steady state" finished;
  let s = Stats.snapshot cache.Frame.stats in
  (* Equilibrium footprint is ~(defer rate x 2 grace periods) objects plus
     the free-slab buffer: ~1200 objects = ~80 slabs here. Without reuse,
     2000 allocations at 16 objects/slab would need ~125 ever-growing
     slabs and keep climbing; the bound asserts the flat line. *)
  Alcotest.(check bool)
    (Printf.sprintf "peak slabs bounded (%d)" s.Stats.peak_slabs)
    true (s.Stats.peak_slabs < 110);
  Frame.check_invariants cache

let test_partial_refill_leaves_room () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let pc = Frame.pcpu_for cache c in
  (* Fill the latent cache with unripe objects, then force a refill. *)
  let objs = List.init 20 (fun _ -> alloc_exn pr cache c) in
  (* empty the object cache *)
  let held =
    let rec go acc =
      match Frame.pop_ocache pc with
      | Some o ->
          Frame.hand_to_user cache c o;
          go (o :: acc)
      | None -> acc
    in
    go []
  in
  List.iter (Prudence.free_deferred pr cache c) objs;
  let latent_n = Slab.Latq.Fifo.length pc.Frame.latent in
  Alcotest.(check bool) "latent populated" true (latent_n > 0);
  let _o = alloc_exn pr cache c in
  (* ocache after refill must leave room: ocache_n + latent <= capacity
     (modulo the one object just popped). *)
  Alcotest.(check bool)
    (Printf.sprintf "partial refill: %d + %d <= %d" pc.Frame.ocache_n latent_n
       cache.Frame.ocache_cap)
    true
    (pc.Frame.ocache_n + latent_n <= cache.Frame.ocache_cap);
  List.iter (fun o -> Prudence.free pr cache c o) held;
  Frame.check_invariants cache

let test_oom_delayed_when_latent () =
  (* Exhaust memory with deferred objects outstanding: alloc must wait a
     grace period and then succeed instead of failing (l.31-32). *)
  let env, pr, cache = make ~total_pages:64 ~obj_size:4096 () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        let objs =
          let rec go acc =
            match Prudence.alloc pr cache c with
            | Some o -> go (o :: acc)
            | None -> acc
          in
          go []
        in
        Alcotest.(check bool) "memory exhausted" true (List.length objs > 40);
        List.iter (Prudence.free_deferred pr cache c) objs;
        match Prudence.alloc pr ~may_wait:true cache c with
        | Some _ -> ()
        | None -> Alcotest.fail "oom despite deferred objects")
  in
  check_completed "oom delay" finished;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "oom delay counted" true (s.Stats.ooms_delayed >= 1)

let test_oom_immediate_without_latent () =
  let env, pr, cache = make ~total_pages:8 ~obj_size:4096 () in
  let c = cpu0 env in
  let rec exhaust () =
    match Prudence.alloc pr ~may_wait:false cache c with
    | Some _ -> exhaust ()
    | None -> ()
  in
  exhaust ();
  Alcotest.(check (option reject)) "hard oom" None
    (Option.map (fun _ -> ()) (Prudence.alloc pr ~may_wait:false cache c));
  ignore env

let test_preflush_runs_on_idle () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let pc = Frame.pcpu_for cache c in
  let finished =
    run_process env (fun () ->
        (* Overfill cache+latent to trigger pre-flush scheduling, then go
           idle. *)
        let objs =
          List.init cache.Frame.ocache_cap (fun _ -> alloc_exn pr cache c)
        in
        List.iter (Prudence.free_deferred pr cache c) objs;
        Alcotest.(check bool) "pre-flush armed" true pc.Frame.preflush_scheduled;
        Sim.Machine.idle_sleep env.machine c Sim.(Clock.ms 2))
  in
  check_completed "preflush" finished;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check bool) "pre-flush pass ran" true (s.Stats.preflush_passes >= 1);
  Alcotest.(check bool) "room restored" true
    (pc.Frame.ocache_n + Slab.Latq.Fifo.length pc.Frame.latent
    <= cache.Frame.ocache_cap);
  Frame.check_invariants cache

let test_preflush_disabled_config () =
  let config = { Prudence.default_config with preflush_enabled = false } in
  let env, pr, cache = make ~config () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        let objs =
          List.init cache.Frame.ocache_cap (fun _ -> alloc_exn pr cache c)
        in
        List.iter (Prudence.free_deferred pr cache c) objs;
        Sim.Machine.idle_sleep env.machine c Sim.(Clock.ms 2))
  in
  check_completed "preflush disabled" finished;
  let s = Stats.snapshot cache.Frame.stats in
  Alcotest.(check int) "no pre-flush passes" 0 s.Stats.preflush_passes

let test_settle_recycles_everything () =
  let env, pr, cache = make () in
  let c = cpu0 env in
  let finished =
    run_process env (fun () ->
        let objs = List.init 100 (fun _ -> alloc_exn pr cache c) in
        List.iter (Prudence.free_deferred pr cache c) objs;
        Prudence.settle pr)
  in
  check_completed "settle" finished;
  Alcotest.(check int) "nothing latent" 0 (Prudence.latent_outstanding pr);
  Alcotest.(check int) "nothing live" 0 (Frame.live_objects cache);
  Frame.check_invariants cache

let test_safety_checker_catches_unsafe_mode () =
  (* Fault injection: unsafe_skip_gp reuses objects before the grace
     period; a reader holding the object must trip the checker. *)
  let config = { Prudence.default_config with unsafe_skip_gp = true } in
  let env, pr, cache = make ~config () in
  let readers = Rcu.Readers.create env.rcu in
  env.fenv.Frame.reuse_check <-
    Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"prudence");
  let c0 = cpu0 env and c1 = cpu env 1 in
  let obj = alloc_exn pr cache c0 in
  (* Drain cpu0's object cache so the deferred object is the only source. *)
  let pc = Frame.pcpu_for cache c0 in
  let rec drain acc =
    match Frame.pop_ocache pc with
    | Some o ->
        Frame.hand_to_user cache c0 o;
        drain (o :: acc)
    | None -> acc
  in
  let _held = drain [] in
  (* A reader on cpu1 still references the object... *)
  Rcu.Readers.enter readers c1;
  Rcu.Readers.hold readers c1 ~oid:obj.Frame.oid;
  (* ...while the writer defers it and the broken allocator recycles it. *)
  Prudence.free_deferred pr cache c0 obj;
  let next = alloc_exn pr cache c0 in
  Alcotest.(check int) "unsafe mode recycled the object" obj.Frame.oid
    next.Frame.oid;
  Alcotest.(check bool) "violation detected" true
    (List.length (Rcu.Readers.violations readers) >= 1);
  Rcu.Readers.exit readers c1

let test_safe_mode_never_violates () =
  (* The same scenario with a correct Prudence: no violation possible
     because the object only merges after the reader's grace period. *)
  let env, pr, cache = make () in
  let readers = Rcu.Readers.create env.rcu in
  env.fenv.Frame.reuse_check <-
    Some (fun oid -> Rcu.Readers.check_reusable readers ~oid ~where:"prudence");
  let c0 = cpu0 env and c1 = cpu env 1 in
  let finished =
    run_process env (fun () ->
        let obj = alloc_exn pr cache c0 in
        Rcu.Readers.enter readers c1;
        Rcu.Readers.hold readers c1 ~oid:obj.Frame.oid;
        Prudence.free_deferred pr cache c0 obj;
        (* Reader works for a while, then exits; grace period follows. *)
        Sim.Process.sleep env.eng Sim.(Clock.ms 3);
        Rcu.Readers.exit readers c1;
        Sim.Process.sleep env.eng Sim.(Clock.ms 10);
        (* Allocate everything: the deferred object eventually recycles. *)
        for _ = 1 to 200 do
          ignore (Prudence.alloc pr cache c0)
        done)
  in
  check_completed "safe mode" finished;
  Alcotest.(check (list string)) "no violations" []
    (Rcu.Readers.violations readers)

let prop_random_ops_keep_invariants =
  QCheck.Test.make ~name:"random prudence op sequences keep invariants"
    ~count:40
    QCheck.(list (int_bound 2))
    (fun ops ->
      let env, pr, cache = make ~obj_size:1024 () in
      let c = cpu0 env in
      let held = ref [] in
      List.iter
        (fun op ->
          match op with
          | 0 -> (
              match Prudence.alloc pr ~may_wait:false cache c with
              | Some o -> held := o :: !held
              | None -> ())
          | 1 -> (
              match !held with
              | o :: rest ->
                  Prudence.free pr cache c o;
                  held := rest
              | [] -> ())
          | _ -> (
              match !held with
              | o :: rest ->
                  Prudence.free_deferred pr cache c o;
                  held := rest
              | [] -> ()))
        ops;
      Frame.check_invariants cache;
      Sim.Engine.run ~until:Sim.(Clock.ms 50) env.eng;
      Frame.check_invariants cache;
      true)

let prop_deferred_never_reused_early =
  QCheck.Test.make
    ~name:"no deferred object is handed out before its grace period"
    ~count:30
    QCheck.(pair (int_bound 100) (int_bound 1000))
    (fun (n_defer, seed) ->
      let env, pr, cache = make ~obj_size:512 () in
      ignore seed;
      let c = cpu0 env in
      let objs = List.init (n_defer + 1) (fun _ -> alloc_exn pr cache c) in
      let cookie_now = Rcu.snapshot env.rcu in
      List.iter (Prudence.free_deferred pr cache c) objs;
      (* Allocate aggressively without advancing time: none of the deferred
         oids may come back because no grace period has completed. *)
      let deferred_oids =
        List.map (fun (o : Frame.objekt) -> o.Frame.oid) objs
      in
      let ok = ref true in
      for _ = 1 to n_defer + 10 do
        match Prudence.alloc pr ~may_wait:false cache c with
        | Some o ->
            if
              List.mem o.Frame.oid deferred_oids
              && not (Rcu.poll env.rcu cookie_now)
            then ok := false
        | None -> ()
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "latent-aware cache" `Quick test_cache_is_latent_aware;
    Alcotest.test_case "alloc/free roundtrip" `Quick test_alloc_free_roundtrip;
    Alcotest.test_case "free_deferred goes latent (no rcu cb)" `Quick
      test_free_deferred_goes_latent;
    Alcotest.test_case "not reusable before gp" `Quick
      test_not_reusable_before_gp;
    Alcotest.test_case "reusable right after gp" `Quick test_reusable_after_gp;
    Alcotest.test_case "latent cache bounded" `Quick test_latent_cache_bounded;
    Alcotest.test_case "steady state does not grow" `Slow
      test_no_growth_in_steady_state;
    Alcotest.test_case "partial refill leaves room" `Quick
      test_partial_refill_leaves_room;
    Alcotest.test_case "oom delayed when latent" `Quick
      test_oom_delayed_when_latent;
    Alcotest.test_case "hard oom without latent" `Quick
      test_oom_immediate_without_latent;
    Alcotest.test_case "pre-flush runs on idle" `Quick test_preflush_runs_on_idle;
    Alcotest.test_case "pre-flush disable config" `Quick
      test_preflush_disabled_config;
    Alcotest.test_case "settle recycles everything" `Quick
      test_settle_recycles_everything;
    Alcotest.test_case "fault injection: unsafe mode caught" `Quick
      test_safety_checker_catches_unsafe_mode;
    Alcotest.test_case "safe mode never violates" `Quick
      test_safe_mode_never_violates;
    QCheck_alcotest.to_alcotest prop_random_ops_keep_invariants;
    QCheck_alcotest.to_alcotest prop_deferred_never_reused_early;
  ]
